//===- tests/expr_test.cpp - math IR, matcher, and evaluator tests --------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "expr/Evaluator.h"
#include "expr/HlacMatch.h"
#include "expr/Program.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

using namespace slingen;
using namespace slingen::testdata;

namespace {

//===----------------------------------------------------------------------===//
// Structure lattice.
//===----------------------------------------------------------------------===//

TEST(Structure, TransposeInvolution) {
  for (StructureKind K :
       {StructureKind::General, StructureKind::LowerTriangular,
        StructureKind::UpperTriangular, StructureKind::SymmetricUpper,
        StructureKind::SymmetricLower, StructureKind::Diagonal,
        StructureKind::Zero, StructureKind::Identity})
    EXPECT_EQ(transposedStructure(transposedStructure(K)), K);
}

TEST(Structure, MulRules) {
  using SK = StructureKind;
  EXPECT_EQ(mulStructure(SK::LowerTriangular, SK::LowerTriangular),
            SK::LowerTriangular);
  EXPECT_EQ(mulStructure(SK::UpperTriangular, SK::UpperTriangular),
            SK::UpperTriangular);
  EXPECT_EQ(mulStructure(SK::LowerTriangular, SK::UpperTriangular),
            SK::General);
  EXPECT_EQ(mulStructure(SK::Zero, SK::General), SK::Zero);
  EXPECT_EQ(mulStructure(SK::Identity, SK::SymmetricUpper),
            SK::SymmetricUpper);
  EXPECT_EQ(mulStructure(SK::Diagonal, SK::LowerTriangular),
            SK::LowerTriangular);
}

TEST(Structure, ViewOfLowerTriangular) {
  using SK = StructureKind;
  // 8x8 lower triangular; the (0:4, 4:8) block is strictly above the
  // diagonal and therefore zero.
  EXPECT_EQ(viewStructure(SK::LowerTriangular, 8, 8, 0, 4, 4, 4), SK::Zero);
  // The (4:8, 0:4) block is below the diagonal: general.
  EXPECT_EQ(viewStructure(SK::LowerTriangular, 8, 8, 4, 4, 0, 4),
            SK::General);
  // Diagonal blocks keep the structure.
  EXPECT_EQ(viewStructure(SK::LowerTriangular, 8, 8, 4, 4, 4, 4),
            SK::LowerTriangular);
  // Full view keeps the structure.
  EXPECT_EQ(viewStructure(SK::LowerTriangular, 8, 8, 0, 8, 0, 8),
            SK::LowerTriangular);
}

TEST(Structure, AddRules) {
  using SK = StructureKind;
  EXPECT_EQ(addStructure(SK::Zero, SK::UpperTriangular), SK::UpperTriangular);
  EXPECT_EQ(addStructure(SK::SymmetricUpper, SK::SymmetricUpper),
            SK::SymmetricUpper);
  EXPECT_EQ(addStructure(SK::LowerTriangular, SK::UpperTriangular),
            SK::General);
  EXPECT_EQ(addStructure(SK::Identity, SK::Diagonal), SK::Diagonal);
}

//===----------------------------------------------------------------------===//
// Expressions.
//===----------------------------------------------------------------------===//

TEST(Expr, ShapesAndPrinting) {
  Program P;
  Operand *A = P.addOperand("A", 3, 4);
  Operand *B = P.addOperand("B", 4, 2);
  ExprPtr M = mul(view(A), view(B));
  EXPECT_EQ(M->rows(), 3);
  EXPECT_EQ(M->cols(), 2);
  EXPECT_EQ(M->str(), "(A * B)");
  ExprPtr T = trans(M);
  EXPECT_EQ(T->rows(), 2);
  EXPECT_EQ(T->cols(), 3);
  // Double transpose cancels.
  EXPECT_EQ(trans(T).get(), M.get());
}

TEST(Expr, ViewStructureAndOverlap) {
  Program P;
  Operand *L = P.addOperand("L", 8, 8);
  L->Structure = StructureKind::LowerTriangular;
  auto V1 = view(L, 0, 4, 4, 4); // strictly upper: zero
  EXPECT_EQ(cast<ViewExpr>(V1.get())->structure(), StructureKind::Zero);
  auto V2 = view(L, 2, 4, 2, 4);
  auto V3 = view(L, 4, 4, 4, 4);
  EXPECT_TRUE(cast<ViewExpr>(V2.get())->overlaps(*cast<ViewExpr>(V3.get())));
  auto V4 = view(L, 0, 2, 0, 2);
  EXPECT_FALSE(cast<ViewExpr>(V4.get())->overlaps(*cast<ViewExpr>(V3.get())));
}

TEST(Expr, StructureInference) {
  Program P;
  Operand *L = P.addOperand("L", 4, 4);
  L->Structure = StructureKind::LowerTriangular;
  Operand *X = P.addOperand("x", 4, 1);
  EXPECT_EQ(inferStructure(mul(view(L), view(L))),
            StructureKind::LowerTriangular);
  EXPECT_EQ(inferStructure(trans(view(L))), StructureKind::UpperTriangular);
  EXPECT_EQ(inferStructure(mul(view(L), view(X))), StructureKind::General);
}

TEST(Expr, FlopCounts) {
  Program P;
  Operand *A = P.addOperand("A", 4, 4);
  Operand *B = P.addOperand("B", 4, 4);
  Operand *C = P.addOperand("C", 4, 4);
  C->IO = IOKind::Out;
  EqStmt S{view(C), add(mul(view(A), view(B)), view(C))};
  // 2*4*4*4 for the product plus 16 adds.
  EXPECT_EQ(stmtFlops(S), 128 + 16);
}

//===----------------------------------------------------------------------===//
// Statement classification.
//===----------------------------------------------------------------------===//

TEST(Classify, SBlacVsHlac) {
  Program P;
  Operand *S = P.addOperand("S", 4, 4);
  S->Structure = StructureKind::SymmetricUpper;
  S->IO = IOKind::Out;
  Operand *H = P.addOperand("H", 4, 4);
  Operand *U = P.addOperand("U", 4, 4);
  U->Structure = StructureKind::UpperTriangular;
  U->IO = IOKind::Out;

  std::set<const Operand *> Defined{H};
  EqStmt S1{view(S), mul(view(H), trans(view(H)))};
  StmtInfo I1 = classifyStmt(S1, Defined);
  EXPECT_FALSE(I1.IsHlac);
  EXPECT_EQ(I1.Defines, S);
  EXPECT_TRUE(Defined.count(S));

  EqStmt S2{mul(trans(view(U)), view(U)), view(S)};
  StmtInfo I2 = classifyStmt(S2, Defined);
  EXPECT_TRUE(I2.IsHlac);
  EXPECT_EQ(I2.Defines, U);
}

//===----------------------------------------------------------------------===//
// HLAC matcher.
//===----------------------------------------------------------------------===//

class MatchFixture : public ::testing::Test {
protected:
  Program P;
  Operand *S, *U, *L, *B, *C, *Uu;

  void SetUp() override {
    S = P.addOperand("S", 8, 8);
    S->Structure = StructureKind::SymmetricUpper;
    U = P.addOperand("U", 8, 8);
    U->Structure = StructureKind::UpperTriangular;
    U->IO = IOKind::Out;
    L = P.addOperand("L", 8, 8);
    L->Structure = StructureKind::LowerTriangular;
    B = P.addOperand("B", 8, 8);
    B->IO = IOKind::Out;
    C = P.addOperand("C", 8, 8);
    Uu = P.addOperand("Uu", 8, 8);
    Uu->Structure = StructureKind::UpperTriangular;
  }
};

TEST_F(MatchFixture, Cholesky) {
  EqStmt S1{mul(trans(view(U)), view(U)), view(S)};
  HlacMatch M = matchHlac(S1, U);
  ASSERT_TRUE(M);
  EXPECT_EQ(M.Kind, HlacKind::Chol);
  EXPECT_TRUE(M.UpperFactor);
  EXPECT_EQ(M.X->Op, U);
}

TEST_F(MatchFixture, TrsmLeftTransposed) {
  EqStmt S1{mul(trans(view(U)), view(B)), view(C)};
  // U is an output of an earlier statement here, so it is "known".
  HlacMatch M = matchHlac(S1, B);
  ASSERT_TRUE(M);
  EXPECT_EQ(M.Kind, HlacKind::Trsm);
  EXPECT_TRUE(M.LeftA);
  EXPECT_TRUE(M.TransA);
  EXPECT_FALSE(M.effUpperA()); // U^T is lower triangular
}

TEST_F(MatchFixture, TrsmRight) {
  EqStmt S1{mul(view(B), view(L)), view(C)};
  HlacMatch M = matchHlac(S1, B);
  ASSERT_TRUE(M);
  EXPECT_EQ(M.Kind, HlacKind::Trsm);
  EXPECT_FALSE(M.LeftA);
}

TEST_F(MatchFixture, Sylvester) {
  EqStmt S1{add(mul(view(L), view(B)), mul(view(B), view(Uu))), view(C)};
  HlacMatch M = matchHlac(S1, B);
  ASSERT_TRUE(M);
  EXPECT_EQ(M.Kind, HlacKind::Trsyl);
  EXPECT_EQ(M.A->Op, L);
  EXPECT_EQ(M.B->Op, Uu);
}

TEST_F(MatchFixture, Lyapunov) {
  EqStmt S1{add(mul(view(L), view(B)), mul(view(B), trans(view(L)))),
            view(S)};
  HlacMatch M = matchHlac(S1, B);
  ASSERT_TRUE(M);
  EXPECT_EQ(M.Kind, HlacKind::Trlya);
  EXPECT_EQ(M.A->Op, L);
  EXPECT_TRUE(M.TransB);
}

TEST_F(MatchFixture, TriangularInverse) {
  EqStmt S1{view(B), invExpr(view(L))};
  HlacMatch M = matchHlac(S1, B);
  ASSERT_TRUE(M);
  EXPECT_EQ(M.Kind, HlacKind::Inv);
  EXPECT_EQ(M.A->Op, L);
}

TEST_F(MatchFixture, RejectsNonTriangularCoefficient) {
  Operand *G = P.addOperand("G", 8, 8); // general: not solvable directly
  EqStmt S1{mul(view(G), view(B)), view(C)};
  HlacMatch M = matchHlac(S1, B);
  EXPECT_FALSE(M);
}

//===----------------------------------------------------------------------===//
// Evaluator.
//===----------------------------------------------------------------------===//

TEST(Evaluator, SBlacChain) {
  // S = H H^T + R, computed densely.
  int K = 6, N = 9;
  Program P;
  Operand *H = P.addOperand("H", K, N);
  Operand *R = P.addOperand("R", K, K);
  R->Structure = StructureKind::SymmetricUpper;
  Operand *S = P.addOperand("S", K, K);
  S->Structure = StructureKind::SymmetricUpper;
  S->IO = IOKind::Out;
  P.append({view(S), add(mul(view(H), trans(view(H))), view(R))});

  Rng Rand(5);
  Env E;
  E.set(H, general(K, N, Rand));
  E.set(R, symmetric(K, Rand));
  evalProgram(P, E);

  auto HS = E.get(H);
  auto RS = E.get(R);
  auto SS = E.get(S);
  for (int I = 0; I < K; ++I)
    for (int J = 0; J < K; ++J) {
      double Acc = RS[I * K + J];
      for (int Q = 0; Q < N; ++Q)
        Acc += HS[I * N + Q] * HS[J * N + Q];
      EXPECT_NEAR(SS[I * K + J], Acc, 1e-12);
    }
}

TEST(Evaluator, CholeskyThenSolveWithOverwrite) {
  // Fig. 5 of the paper: S = H H^T + R; U^T U = S; U^T B = P.
  int K = 8;
  Program Pr;
  Operand *H = Pr.addOperand("H", K, K);
  Operand *Pm = Pr.addOperand("P", K, K);
  Pm->Structure = StructureKind::SymmetricUpper;
  Operand *R = Pr.addOperand("R", K, K);
  R->Structure = StructureKind::SymmetricUpper;
  Operand *S = Pr.addOperand("S", K, K);
  S->Structure = StructureKind::SymmetricUpper;
  S->IO = IOKind::Out;
  Operand *U = Pr.addOperand("U", K, K);
  U->Structure = StructureKind::UpperTriangular;
  U->IO = IOKind::Out;
  U->Overwrites = S; // ow(S)
  Operand *B = Pr.addOperand("B", K, K);
  B->IO = IOKind::Out;

  Pr.append({view(S), add(mul(view(H), trans(view(H))), view(R))});
  Pr.append({mul(trans(view(U)), view(U)), view(S)});
  Pr.append({mul(trans(view(U)), view(B)), view(Pm)});

  Rng Rand(7);
  Env E;
  E.set(H, general(K, K, Rand));
  E.set(R, spd(K, Rand));
  E.set(Pm, symmetric(K, Rand));
  evalProgram(Pr, E);

  // Check U^T U = S where S = H H^T + R (recompute independently).
  auto HS = E.get(H);
  auto RS = E.get(R);
  std::vector<double> SRef(K * K);
  for (int I = 0; I < K; ++I)
    for (int J = 0; J < K; ++J) {
      double Acc = RS[I * K + J];
      for (int Q = 0; Q < K; ++Q)
        Acc += HS[I * K + Q] * HS[J * K + Q];
      SRef[I * K + J] = Acc;
    }
  auto US = E.get(U);
  for (int I = 0; I < K; ++I)
    for (int J = 0; J < K; ++J) {
      double Acc = 0.0;
      for (int Q = 0; Q < K; ++Q)
        Acc += US[Q * K + I] * US[Q * K + J];
      EXPECT_NEAR(Acc, SRef[I * K + J], 1e-9);
    }
  // U is upper triangular with zeros below.
  for (int I = 0; I < K; ++I)
    for (int J = 0; J < I; ++J)
      EXPECT_EQ(US[I * K + J], 0.0);
  // And U^T B = P holds.
  auto BS = E.get(B);
  auto PS = E.get(Pm);
  for (int I = 0; I < K; ++I)
    for (int J = 0; J < K; ++J) {
      double Acc = 0.0;
      for (int Q = 0; Q < K; ++Q)
        Acc += US[Q * K + I] * BS[Q * K + J];
      EXPECT_NEAR(Acc, PS[I * K + J], 1e-9);
    }
}

TEST(Evaluator, ScalarStatements) {
  Program P;
  Operand *A = P.addOperand("a", 1, 1);
  Operand *B = P.addOperand("b", 1, 1);
  Operand *C = P.addOperand("c", 1, 1);
  C->IO = IOKind::Out;
  // c = sqrt(a) / b - 2.
  P.append({view(C),
            sub(divExpr(sqrtExpr(view(A)), view(B)), constant(2.0))});
  Env E;
  E.set(A, {9.0});
  E.set(B, {2.0});
  evalProgram(P, E);
  EXPECT_DOUBLE_EQ(E.get(C)[0], 3.0 / 2.0 - 2.0);
}

TEST(Evaluator, SubViewWrites) {
  Program P;
  Operand *A = P.addOperand("A", 4, 4);
  Operand *B = P.addOperand("B", 4, 4);
  B->IO = IOKind::InOut;
  // B(0:2, 2:4) = A(2:4, 0:2)^T.
  P.append({view(B, 0, 2, 2, 2), trans(view(A, 2, 2, 0, 2))});
  Rng Rand(9);
  Env E;
  auto AD = general(4, 4, Rand);
  auto BD = general(4, 4, Rand);
  E.set(A, AD);
  E.set(B, BD);
  evalProgram(P, E);
  auto BS = E.get(B);
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      EXPECT_DOUBLE_EQ(BS[I * 4 + (J + 2)], AD[(2 + J) * 4 + I]);
  // Untouched region is preserved.
  EXPECT_DOUBLE_EQ(BS[2 * 4 + 1], BD[2 * 4 + 1]);
}

} // namespace
