//===- tests/slc_test.cpp - command-line driver tests ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Exercises the slc binary end to end: LA file in, C out, options,
// diagnostics. The binary path is injected by CMake.
//===----------------------------------------------------------------------===//

#include "runtime/Jit.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

namespace {

#ifndef SLINGEN_SLC_PATH
#define SLINGEN_SLC_PATH "slc"
#endif

struct RunResult {
  int Status;
  std::string Out;
};

RunResult runSlc(const std::string &Args) {
  std::string OutFile = "/tmp/slc_test_" + std::to_string(getpid()) + ".out";
  std::string Cmd = std::string(SLINGEN_SLC_PATH) + " " + Args + " > " +
                    OutFile + " 2>&1";
  int Status = system(Cmd.c_str());
  std::ifstream In(OutFile);
  std::stringstream SS;
  SS << In.rdbuf();
  unlink(OutFile.c_str());
  return {Status, SS.str()};
}

std::string writeLa(const std::string &Text) {
  std::string Path = "/tmp/slc_test_" + std::to_string(getpid()) + ".la";
  std::ofstream Out(Path);
  Out << Text;
  return Path;
}

const char *PotrfLa = "Mat A(8, 8) <In, UpSym, PD>;\n"
                      "Mat X(8, 8) <Out, UpTri, NS>;\n"
                      "X' * X = A;\n";

TEST(Slc, EmitsCompilableLookingC) {
  std::string Path = writeLa(PotrfLa);
  RunResult R = runSlc(Path);
  unlink(Path.c_str());
  EXPECT_EQ(R.Status, 0) << R.Out;
  EXPECT_NE(R.Out.find("#include <immintrin.h>"), std::string::npos);
  EXPECT_NE(R.Out.find("void slc_test_"), std::string::npos); // from file name
  EXPECT_NE(R.Out.find("_mm256_"), std::string::npos);
}

TEST(Slc, ScalarIsaHasNoIntrinsics) {
  std::string Path = writeLa(PotrfLa);
  RunResult R = runSlc("-isa scalar -name potrf8 " + Path);
  unlink(Path.c_str());
  EXPECT_EQ(R.Status, 0) << R.Out;
  EXPECT_NE(R.Out.find("void potrf8("), std::string::npos);
  EXPECT_EQ(R.Out.find("_mm256_"), std::string::npos);
  EXPECT_EQ(R.Out.find("immintrin"), std::string::npos);
}

TEST(Slc, PrintVariants) {
  std::string Path = writeLa(PotrfLa);
  RunResult R = runSlc("-print-variants " + Path);
  unlink(Path.c_str());
  EXPECT_EQ(R.Status, 0) << R.Out;
  EXPECT_NE(R.Out.find("1 HLAC(s)"), std::string::npos);
  EXPECT_NE(R.Out.find("3 variant(s)"), std::string::npos);
}

TEST(Slc, ExplicitVariantSelection) {
  std::string Path = writeLa(PotrfLa);
  RunResult R = runSlc("-variant 2 -name v2kernel " + Path);
  unlink(Path.c_str());
  EXPECT_EQ(R.Status, 0) << R.Out;
  EXPECT_NE(R.Out.find("void v2kernel("), std::string::npos);
}

TEST(Slc, BatchFlagEmitsBatchEntry) {
  std::string Path = writeLa(PotrfLa);
  RunResult R = runSlc("-batch -name potrfb " + Path);
  unlink(Path.c_str());
  EXPECT_EQ(R.Status, 0) << R.Out;
  EXPECT_NE(R.Out.find("void potrfb("), std::string::npos);
  EXPECT_NE(R.Out.find("void potrfb_batch(int count"), std::string::npos);
}

TEST(Slc, BatchStrategyVecEmitsInstanceParallelEntry) {
  std::string Path = writeLa(PotrfLa);
  RunResult R = runSlc("-batch -batch-strategy vec -name potrfv " + Path);
  EXPECT_EQ(R.Status, 0) << R.Out;
  EXPECT_NE(R.Out.find("void potrfv_batch(int count"), std::string::npos);
  EXPECT_NE(R.Out.find("potrfv_vecblk"), std::string::npos);
  EXPECT_NE(R.Out.find("potrfv_aosoa_pack"), std::string::npos);

  RunResult L = runSlc("-batch -batch-strategy loop -name potrfv " + Path);
  EXPECT_EQ(L.Status, 0) << L.Out;
  EXPECT_NE(L.Out.find("void potrfv_batch(int count"), std::string::npos);
  EXPECT_EQ(L.Out.find("potrfv_vecblk"), std::string::npos);

  // The fused strategy is transpose-free: the block kernel reads the
  // batch ABI directly, and the span entry for threaded dispatch is there.
  RunResult F =
      runSlc("-batch -batch-strategy fused -name potrfv " + Path);
  EXPECT_EQ(F.Status, 0) << F.Out;
  EXPECT_NE(F.Out.find("void potrfv_batch(int count"), std::string::npos);
  EXPECT_NE(F.Out.find("potrfv_fusedblk"), std::string::npos);
  EXPECT_NE(F.Out.find("potrfv_batch_span(int start"), std::string::npos);
  EXPECT_EQ(F.Out.find("potrfv_aosoa_pack"), std::string::npos);

  RunResult Bad = runSlc("-batch -batch-strategy bogus -name potrfv " + Path);
  unlink(Path.c_str());
  EXPECT_NE(Bad.Status, 0);
  EXPECT_NE(Bad.Out.find("loop, vec, fused, or auto"), std::string::npos);
}

TEST(Slc, CacheDirServesIdenticalOutputAcrossRuns) {
  std::string Path = writeLa(PotrfLa);
  std::string Dir = "/tmp/slc_test_cache_" + std::to_string(getpid());
  std::string Args = "-cache-dir " + Dir + " -name potrfc " + Path;
  RunResult First = runSlc(Args);
  RunResult Second = runSlc(Args); // fresh process: served from disk
  unlink(Path.c_str());
  EXPECT_EQ(First.Status, 0) << First.Out;
  EXPECT_EQ(Second.Status, 0) << Second.Out;
  EXPECT_EQ(First.Out, Second.Out);
  EXPECT_NE(First.Out.find("cache key:"), std::string::npos);
  system(("rm -rf " + Dir).c_str());
}

TEST(Slc, MeasureFlagIsAcceptedAndAnnotates) {
  std::string Path = writeLa(PotrfLa);
  RunResult R = runSlc("-measure -isa scalar -name potrfm " + Path);
  unlink(Path.c_str());
  EXPECT_EQ(R.Status, 0) << R.Out;
  EXPECT_NE(R.Out.find("void potrfm("), std::string::npos);
}

// slc runs on the sl::Session facade now, so -so-out works locally too
// (the local backend JIT-compiles and hands the object bytes through the
// same Kernel accessor a daemon-served request uses).
TEST(Slc, SoOutWritesLocalJitObject) {
  if (!slingen::runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  std::string Path = writeLa(PotrfLa);
  std::string So = "/tmp/slc_test_" + std::to_string(getpid()) + ".so";
  RunResult R = runSlc("-so-out " + So + " -name potrfso " + Path);
  unlink(Path.c_str());
  EXPECT_EQ(R.Status, 0) << R.Out;
  std::ifstream In(So, std::ios::binary);
  ASSERT_TRUE(In) << "slc must have written the shared object";
  char Magic[4] = {};
  In.read(Magic, 4);
  EXPECT_EQ(std::string(Magic, 4), std::string("\x7f"
                                               "ELF"));
  unlink(So.c_str());
}

TEST(Slc, SyntaxErrorIsDiagnosed) {
  std::string Path = writeLa("Mat A(8, 8) <In;\n");
  RunResult R = runSlc(Path);
  unlink(Path.c_str());
  EXPECT_NE(R.Status, 0);
  EXPECT_FALSE(R.Out.empty());
}

TEST(Slc, MissingFileIsDiagnosed) {
  RunResult R = runSlc("/nonexistent/input.la");
  EXPECT_NE(R.Status, 0);
  EXPECT_NE(R.Out.find("cannot open"), std::string::npos);
}

} // namespace
