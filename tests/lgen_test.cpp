//===- tests/lgen_test.cpp - tiling layer tests ----------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Every tiled kernel is validated against the dense evaluator by running
// the generated C-IR in the interpreter, across vector widths, sizes
// (including non-multiples of nu), structures, and statement shapes.
//===----------------------------------------------------------------------===//

#include "cir/Interp.h"
#include "cir/Passes.h"
#include "expr/Evaluator.h"
#include "lgen/Tiler.h"
#include "lgen/VectorRules.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

using namespace slingen;
using namespace slingen::testdata;

namespace {

/// Runs one statement through (a) the dense evaluator and (b) the tiler +
/// interpreter, and compares all writable operand buffers.
void checkStmt(Program &P, std::map<const Operand *, std::vector<double>>
                               Inputs,
               int Nu, int UnrollTiles = 32, double Tol = 1e-11) {
  // Evaluator reference.
  Env RefEnv;
  for (auto &[Op, Data] : Inputs)
    RefEnv.set(Op, Data);
  evalProgram(P, RefEnv);

  // Tiled code under test.
  lgen::TileOptions Opt;
  Opt.Nu = Nu;
  Opt.UnrollTiles = UnrollTiles;
  cir::FuncBuilder B("kernel", Nu);
  std::set<const Operand *> Defined = P.initiallyDefined();
  for (const EqStmt &S : P.stmts()) {
    classifyStmt(S, Defined);
    lgen::compileSBlac(B, S, Opt);
    // Keep the full-storage convention for structured outputs.
    lgen::emitStructureNormalize(B, *cast<ViewExpr>(S.Lhs.get()), Opt);
  }
  std::vector<const Operand *> Roots;
  std::map<const Operand *, std::vector<double>> Bufs;
  for (const Operand *Op : P.operands()) {
    const Operand *R = Op->root();
    if (Bufs.count(R))
      continue;
    Bufs[R] = std::vector<double>(static_cast<size_t>(R->Rows) * R->Cols,
                                  0.0);
    Roots.push_back(R);
  }
  for (auto &[Op, Data] : Inputs) {
    const Operand *R = Op->root();
    std::copy(Data.begin(), Data.end(), Bufs[R].begin());
  }
  cir::Function F = B.take(Roots);
  std::map<const Operand *, double *> Ptrs;
  for (auto &[R, V] : Bufs)
    Ptrs[R] = V.data();
  interpret(F, Ptrs);

  for (const Operand *Op : P.operands()) {
    if (!Op->isWritable())
      continue;
    auto Want = RefEnv.get(Op);
    const auto &GotBuf = Bufs[Op->root()];
    double MaxDiff = 0.0;
    for (int I = 0; I < Op->Rows * Op->Cols; ++I)
      MaxDiff = std::max(MaxDiff, std::fabs(Want[I] - GotBuf[I]));
    EXPECT_LT(MaxDiff, Tol) << "operand " << Op->Name << " nu=" << Nu
                            << "\n"
                            << F.str();
  }
}

class TilerWidths : public ::testing::TestWithParam<int> {};

TEST_P(TilerWidths, GemmPlusC) {
  int Nu = GetParam();
  for (int M : {3, 4, 8, 12})
    for (int K : {1, 4, 7}) {
      Program P;
      Operand *A = P.addOperand("A", M, K);
      Operand *Bm = P.addOperand("B", K, M);
      Operand *C = P.addOperand("C", M, M);
      C->IO = IOKind::InOut;
      P.append({view(C), add(mul(view(A), view(Bm)), view(C))});
      Rng R(M * 131 + K);
      checkStmt(P,
                {{A, general(M, K, R)},
                 {Bm, general(K, M, R)},
                 {C, general(M, M, R)}},
                Nu);
    }
}

TEST_P(TilerWidths, TransposedFactors) {
  int Nu = GetParam();
  int M = 8, K = 6;
  Program P;
  Operand *A = P.addOperand("A", K, M); // used as A^T
  Operand *Bm = P.addOperand("B", M, K);
  Operand *C = P.addOperand("C", M, M);
  C->IO = IOKind::Out;
  // C = A^T * B^T.
  P.append({view(C), mul(trans(view(A)), trans(view(Bm)))});
  Rng R(7);
  checkStmt(P, {{A, general(K, M, R)}, {Bm, general(M, K, R)}}, Nu);
}

TEST_P(TilerWidths, SelfAccumulatingUpdate) {
  int Nu = GetParam();
  int M = 8, K = 4;
  Program P;
  Operand *U = P.addOperand("U", K, M);
  Operand *S = P.addOperand("S", M, M);
  S->IO = IOKind::InOut;
  // S = S - U^T U (the trailing update of blocked Cholesky).
  P.append({view(S), sub(view(S), mul(trans(view(U)), view(U)))});
  Rng R(21);
  checkStmt(P, {{U, general(K, M, R)}, {S, symmetric(M, R)}}, Nu);
}

TEST_P(TilerWidths, SymmetricOutputMirrors) {
  int Nu = GetParam();
  for (int M : {4, 8, 12}) {
    Program P;
    Operand *H = P.addOperand("H", M, M + 2);
    Operand *Rm = P.addOperand("R", M, M);
    Rm->Structure = StructureKind::SymmetricUpper;
    Operand *S = P.addOperand("S", M, M);
    S->Structure = StructureKind::SymmetricUpper;
    S->IO = IOKind::Out;
    P.append({view(S), add(mul(view(H), trans(view(H))), view(Rm))});
    Rng R(M);
    checkStmt(P, {{H, general(M, M + 2, R)}, {Rm, symmetric(M, R)}}, Nu);
  }
}

TEST_P(TilerWidths, TriangularFactorSkipsZeroRegion) {
  int Nu = GetParam();
  int M = 8;
  Program P;
  Operand *L = P.addOperand("L", M, M);
  L->Structure = StructureKind::LowerTriangular;
  Operand *X = P.addOperand("X", M, M);
  Operand *C = P.addOperand("C", M, M);
  C->IO = IOKind::Out;
  P.append({view(C), mul(view(L), view(X))});
  Rng R(3);
  checkStmt(P, {{L, lowerTri(M, R)}, {X, general(M, M, R)}}, Nu);
}

TEST_P(TilerWidths, MatrixVectorAndDots) {
  int Nu = GetParam();
  int M = 12, N = 8;
  Program P;
  Operand *A = P.addOperand("A", M, N);
  Operand *X = P.addOperand("x", N, 1);
  Operand *Z = P.addOperand("z", M, 1);
  Operand *Y = P.addOperand("y", M, 1);
  Y->IO = IOKind::Out;
  Operand *Dot = P.addOperand("d", 1, 1);
  Dot->IO = IOKind::Out;
  // y = z - A x; d = z^T z - y^T z.
  P.append({view(Y), sub(view(Z), mul(view(A), view(X)))});
  P.append({view(Dot), sub(mul(trans(view(Z)), view(Z)),
                           mul(trans(view(Y)), view(Z)))});
  Rng R(17);
  checkStmt(P,
            {{A, general(M, N, R)},
             {X, general(N, 1, R)},
             {Z, general(M, 1, R)}},
            Nu);
}

TEST_P(TilerWidths, ScaledVectorCombination) {
  int Nu = GetParam();
  int M = 11; // deliberately not a multiple of nu
  Program P;
  Operand *V1 = P.addOperand("v1", M, 1);
  Operand *Z1 = P.addOperand("z1", M, 1);
  Operand *Al = P.addOperand("alpha", 1, 1);
  Operand *Ta = P.addOperand("tau", 1, 1);
  Operand *Y = P.addOperand("y", M, 1);
  Y->IO = IOKind::Out;
  // y = alpha v1 + tau z1 (the l1a shape).
  P.append({view(Y), add(mul(view(Al), view(V1)), mul(view(Ta), view(Z1)))});
  Rng R(9);
  checkStmt(P,
            {{V1, general(M, 1, R)},
             {Z1, general(M, 1, R)},
             {Al, {0.75}},
             {Ta, {1.25}}},
            Nu);
}

TEST_P(TilerWidths, RowVectorOutput) {
  int Nu = GetParam();
  int N = 8;
  Program P;
  Operand *X = P.addOperand("x", N, 1);
  Operand *A = P.addOperand("A", N, N);
  Operand *Y = P.addOperand("y", 1, N);
  Y->IO = IOKind::Out;
  // y = x^T A.
  P.append({view(Y), mul(trans(view(X)), view(A))});
  Rng R(19);
  checkStmt(P, {{X, general(N, 1, R)}, {A, general(N, N, R)}}, Nu);
}

TEST_P(TilerWidths, OuterProduct) {
  int Nu = GetParam();
  int M = 8;
  Program P;
  Operand *X = P.addOperand("x", M, 1);
  Operand *Y = P.addOperand("y", M, 1);
  Operand *C = P.addOperand("C", M, M);
  C->IO = IOKind::Out;
  P.append({view(C), mul(view(X), trans(view(Y)))});
  Rng R(23);
  checkStmt(P, {{X, general(M, 1, R)}, {Y, general(M, 1, R)}}, Nu);
}

TEST_P(TilerWidths, TransposeOnly) {
  int Nu = GetParam();
  Program P;
  Operand *A = P.addOperand("A", 7, 5);
  Operand *C = P.addOperand("C", 5, 7);
  C->IO = IOKind::Out;
  P.append({view(C), trans(view(A))});
  Rng R(29);
  checkStmt(P, {{A, general(7, 5, R)}}, Nu);
}

TEST_P(TilerWidths, LoopModeMatchesUnrolled) {
  int Nu = GetParam();
  int M = 24, K = 24; // enough tiles to trigger loop mode at UnrollTiles=2
  Program P;
  Operand *A = P.addOperand("A", M, K);
  Operand *Bm = P.addOperand("B", K, M);
  Operand *C = P.addOperand("C", M, M);
  C->IO = IOKind::Out;
  P.append({view(C), mul(view(A), view(Bm))});
  Rng R(31);
  auto AD = general(M, K, R);
  auto BD = general(K, M, R);
  checkStmt(P, {{A, AD}, {Bm, BD}}, Nu, /*UnrollTiles=*/2);
}

TEST_P(TilerWidths, SubViewStatement) {
  int Nu = GetParam();
  // Operates on interior views, as FLAME-produced statements do.
  int N = 12;
  Program P;
  Operand *S = P.addOperand("S", N, N);
  S->IO = IOKind::InOut;
  Operand *U = P.addOperand("U", N, N);
  // S(8:12, 8:12) = S(8:12, 8:12) - U(0:4, 8:12)^T * U(0:4, 8:12).
  auto SBr = view(S, 8, 4, 8, 4);
  auto Panel = view(U, 0, 4, 8, 4);
  P.append({SBr, sub(SBr, mul(trans(Panel), Panel))});
  Rng R(37);
  checkStmt(P, {{S, general(N, N, R)}, {U, general(N, N, R)}}, Nu);
}

INSTANTIATE_TEST_SUITE_P(Widths, TilerWidths, ::testing::Values(1, 2, 4));

//===----------------------------------------------------------------------===//
// Vector rewriting rules (Table 2).
//===----------------------------------------------------------------------===//

TEST(VectorRules, MergesDivisionRun) {
  // u_j = s_j / d for j = 1..3 becomes t = 1/d; u span = t * s span
  // (rules R0+R1, exactly paper Fig. 10).
  Program P;
  Operand *U = P.addOperand("U", 4, 4);
  U->IO = IOKind::Out;
  Operand *S = P.addOperand("S", 4, 4);
  for (int J = 1; J < 4; ++J)
    P.append({view(U, 0, 1, J, 1),
              divExpr(view(S, 0, 1, J, 1), view(S, 0, 1, 0, 1))});
  int Merged = lgen::applyVectorRules(P);
  EXPECT_EQ(Merged, 2);
  ASSERT_EQ(P.stmts().size(), 2u); // reciprocal + scaling
  // First statement computes the reciprocal into a temp.
  EXPECT_EQ(P.stmts()[0].Rhs->kind(), ExprKind::Div);
  // Second is a scalar-times-span sBLAC.
  EXPECT_EQ(P.stmts()[1].Lhs->cols(), 3);
  EXPECT_EQ(P.stmts()[1].Rhs->kind(), ExprKind::Mul);

  // Numerically identical to the originals.
  Env E;
  Rng R(5);
  auto SD = general(4, 4, R);
  SD[0] = 2.0;
  E.set(S, SD);
  evalProgram(P, E);
  auto UD = E.get(U);
  for (int J = 1; J < 4; ++J)
    EXPECT_NEAR(UD[J], SD[J] / SD[0], 1e-12);
}

TEST(VectorRules, MergesUpdateRun) {
  // s_j = s_j - a * b_j runs merge into a span statement.
  Program P;
  Operand *S = P.addOperand("S", 4, 4);
  S->IO = IOKind::InOut;
  Operand *U = P.addOperand("U", 4, 4);
  for (int J = 0; J < 4; ++J)
    P.append({view(S, 1, 1, J, 1),
              sub(view(S, 1, 1, J, 1),
                  mul(view(U, 0, 1, 1, 1), view(U, 0, 1, J, 1)))});
  int Merged = lgen::applyVectorRules(P);
  EXPECT_EQ(Merged, 3);
  ASSERT_EQ(P.stmts().size(), 1u);
  EXPECT_EQ(P.stmts()[0].Lhs->cols(), 4);
}

TEST(VectorRules, KeepsNonRuns) {
  Program P;
  Operand *U = P.addOperand("U", 4, 4);
  U->IO = IOKind::Out;
  Operand *S = P.addOperand("S", 4, 4);
  // Different divisors: not a run.
  P.append({view(U, 0, 1, 1, 1),
            divExpr(view(S, 0, 1, 1, 1), view(S, 0, 1, 0, 1))});
  P.append({view(U, 0, 1, 2, 1),
            divExpr(view(S, 0, 1, 2, 1), view(S, 1, 1, 1, 1))});
  EXPECT_EQ(lgen::applyVectorRules(P), 0);
  EXPECT_EQ(P.stmts().size(), 2u);
}

TEST(VectorRules, ColumnRunsMerge) {
  Program P;
  Operand *X = P.addOperand("X", 6, 3);
  X->IO = IOKind::Out;
  Operand *Y = P.addOperand("Y", 6, 3);
  Operand *C = P.addOperand("c", 1, 1);
  for (int I = 0; I < 6; ++I)
    P.append({view(X, I, 1, 1, 1),
              mul(view(C), view(Y, I, 1, 1, 1))});
  EXPECT_EQ(lgen::applyVectorRules(P), 5);
  ASSERT_EQ(P.stmts().size(), 1u);
  EXPECT_EQ(P.stmts()[0].Lhs->rows(), 6);
  EXPECT_EQ(P.stmts()[0].Lhs->cols(), 1);
}

} // namespace
