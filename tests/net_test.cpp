//===- tests/net_test.cpp - sld socket subsystem tests ---------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//===----------------------------------------------------------------------===//
// The network front end: wire framing (torn/short frames, oversized
// payloads, bad magic), protocol encode/decode strictness, the options
// round-trip helpers, and the Server/Client pair end to end over real
// sockets -- including N concurrent clients on one key observing the
// single-flight, WARM-then-GET warm hits, and (compiler-gated) numeric
// identity between a locally generated kernel and one served over the
// socket and dlopen'd from the shipped bytes.
//===----------------------------------------------------------------------===//

#include "la/Programs.h"
#include "net/Client.h"
#include "net/Protocol.h"
#include "net/Server.h"
#include "net/Wire.h"
#include "runtime/Jit.h"
#include "service/KernelService.h"
#include "slingen/OptionsIO.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <stdlib.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace slingen;
using namespace slingen::net;
using namespace slingen::testdata;

namespace {

/// RAII temporary directory (socket files, cache dirs).
struct TempDir {
  TempDir() {
    char Tmpl[] = "/tmp/slingen_net_XXXXXX";
    Path = mkdtemp(Tmpl);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string Path;
};

/// A connected AF_UNIX stream pair for wire-level tests.
struct SocketPair {
  int A = -1, B = -1;
  SocketPair() {
    int Fds[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) == 0) {
      A = Fds[0];
      B = Fds[1];
    }
  }
  ~SocketPair() {
    if (A >= 0)
      close(A);
    if (B >= 0)
      close(B);
  }
};

/// A raw client socket speaking (possibly broken) bytes at a server.
int rawConnect(const std::string &Path) {
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un SA{};
  SA.sun_family = AF_UNIX;
  strncpy(SA.sun_path, Path.c_str(), sizeof(SA.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) != 0) {
    close(Fd);
    return -1;
  }
  return Fd;
}

Request potrfRequest(const std::string &Func, const VectorISA &Isa,
                     int N = 8) {
  GenOptions O;
  O.Isa = &Isa;
  O.FuncName = Func;
  Request R;
  R.LaSource = la::potrfSource(N);
  R.OptionsText = serializeGenOptions(O);
  return R;
}

//===----------------------------------------------------------------------===//
// Wire framing
//===----------------------------------------------------------------------===//

TEST(Wire, FrameRoundTrip) {
  SocketPair SP;
  ASSERT_GE(SP.A, 0);
  std::string Payload = "hello sld";
  Payload.push_back('\0'); // binary-safe
  Payload += "tail";
  std::string Err;
  ASSERT_TRUE(writeFrame(SP.A, Verb::Get, Payload, Err)) << Err;
  ASSERT_TRUE(writeFrame(SP.A, Verb::Ping, "", Err)) << Err;

  Frame F;
  ASSERT_EQ(readFrame(SP.B, F, Err), ReadStatus::Ok) << Err;
  EXPECT_EQ(F.verb(), Verb::Get);
  EXPECT_EQ(F.Payload, Payload);
  ASSERT_EQ(readFrame(SP.B, F, Err), ReadStatus::Ok) << Err;
  EXPECT_EQ(F.verb(), Verb::Ping);
  EXPECT_TRUE(F.Payload.empty());

  // Clean close between frames is Eof, not an error.
  close(SP.A);
  SP.A = -1;
  EXPECT_EQ(readFrame(SP.B, F, Err), ReadStatus::Eof);
}

TEST(Wire, TornHeaderAndTornPayloadAreErrors) {
  {
    SocketPair SP;
    // Half a header, then close.
    ASSERT_EQ(write(SP.A, "sld2\x01\xff", 6), 6);
    close(SP.A);
    SP.A = -1;
    Frame F;
    std::string Err;
    EXPECT_EQ(readFrame(SP.B, F, Err), ReadStatus::Error);
    EXPECT_NE(Err.find("torn frame"), std::string::npos) << Err;
  }
  {
    SocketPair SP;
    // A full header promising 100 payload bytes, only 3 delivered.
    std::string Hdr = "sld2";
    Hdr.push_back(0x01);
    Hdr.push_back(100);
    Hdr.append(3, '\0');
    Hdr += "abc";
    ASSERT_EQ(write(SP.A, Hdr.data(), Hdr.size()),
              static_cast<ssize_t>(Hdr.size()));
    close(SP.A);
    SP.A = -1;
    Frame F;
    std::string Err;
    EXPECT_EQ(readFrame(SP.B, F, Err), ReadStatus::Error);
    EXPECT_NE(Err.find("torn frame"), std::string::npos) << Err;
  }
}

TEST(Wire, BadMagicIsRejected) {
  SocketPair SP;
  ASSERT_EQ(write(SP.A, "HTTP/1.1 ", 9), 9);
  Frame F;
  std::string Err;
  EXPECT_EQ(readFrame(SP.B, F, Err), ReadStatus::Error);
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;
}

TEST(Wire, OversizedPayloadIsRejectedBeforeReading) {
  SocketPair SP;
  std::string Err;
  // Declared length 2 MiB against a 1 MiB cap; no payload bytes follow,
  // proving rejection happens on the header alone.
  std::string Hdr = "sld2";
  Hdr.push_back(0x01);
  uint32_t Len = 2u << 20;
  for (int I = 0; I < 4; ++I)
    Hdr.push_back(static_cast<char>((Len >> (8 * I)) & 0xff));
  ASSERT_EQ(write(SP.A, Hdr.data(), Hdr.size()),
            static_cast<ssize_t>(Hdr.size()));
  Frame F;
  EXPECT_EQ(readFrame(SP.B, F, Err, /*MaxPayload=*/1u << 20),
            ReadStatus::Error);
  EXPECT_NE(Err.find("exceeds"), std::string::npos) << Err;
}

TEST(Wire, ByteReaderNeverOverruns) {
  ByteWriter W;
  W.u8(7);
  W.u32(123456);
  W.u64(0x1122334455667788ULL);
  W.f64(3.25);
  W.str("abc");
  std::string Data = W.take();

  ByteReader B(Data);
  uint8_t V8;
  uint32_t V32;
  uint64_t V64;
  double D;
  std::string S;
  ASSERT_TRUE(B.u8(V8));
  ASSERT_TRUE(B.u32(V32));
  ASSERT_TRUE(B.u64(V64));
  ASSERT_TRUE(B.f64(D));
  ASSERT_TRUE(B.str(S));
  EXPECT_EQ(V8, 7);
  EXPECT_EQ(V32, 123456u);
  EXPECT_EQ(V64, 0x1122334455667788ULL);
  EXPECT_EQ(D, 3.25);
  EXPECT_EQ(S, "abc");
  EXPECT_TRUE(B.atEnd());

  // Every truncation point fails cleanly.
  for (size_t Cut = 0; Cut < Data.size(); ++Cut) {
    std::string Short = Data.substr(0, Cut);
    ByteReader T(Short);
    bool Ok = T.u8(V8) && T.u32(V32) && T.u64(V64) && T.f64(D) && T.str(S);
    EXPECT_FALSE(Ok && Cut < Data.size());
  }

  // A string whose length prefix promises more than the buffer holds.
  ByteWriter W2;
  W2.u32(1000);
  std::string Lying = W2.take() + "short";
  ByteReader L(Lying);
  EXPECT_FALSE(L.str(S));
}

//===----------------------------------------------------------------------===//
// Protocol messages
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTrip) {
  Request R;
  R.LaSource = "Mat A(4,4) <In>;\n";
  R.OptionsText = "isa=avx\nfunc=k\n";
  R.Batched = true;
  R.StrategyName = "fused";
  R.Threads = 4;
  R.MeasureOverride = 1;
  R.WantSo = false;

  Request D;
  std::string Err;
  ASSERT_TRUE(decodeRequest(encodeRequest(R), D, Err)) << Err;
  EXPECT_EQ(D.LaSource, R.LaSource);
  EXPECT_EQ(D.OptionsText, R.OptionsText);
  EXPECT_EQ(D.Batched, R.Batched);
  EXPECT_EQ(D.StrategyName, R.StrategyName);
  EXPECT_EQ(D.Threads, 4);
  EXPECT_EQ(D.MeasureOverride, 1);
  EXPECT_EQ(D.WantSo, false);

  // Unset overrides survive as unset.
  R.MeasureOverride = -1;
  R.Threads = 0;
  ASSERT_TRUE(decodeRequest(encodeRequest(R), D, Err));
  EXPECT_EQ(D.MeasureOverride, -1);
  EXPECT_EQ(D.Threads, 0);

  // Truncated and trailing-garbage payloads are rejected.
  std::string Enc = encodeRequest(R);
  EXPECT_FALSE(decodeRequest(Enc.substr(0, Enc.size() / 2), D, Err));
  EXPECT_FALSE(decodeRequest(Enc + "x", D, Err));
}

TEST(Protocol, ArtifactRoundTrip) {
  ArtifactMsg A;
  A.Key = "00deadbeef001122";
  A.FuncName = "potrf8";
  A.IsaName = "avx";
  A.NumParams = 2;
  A.Batched = true;
  A.StrategyName = "loop";
  A.BatchThreads = 8;
  A.Choice = {2, 0, 1};
  A.StaticCost = 1048;
  A.Measured = true;
  A.MeasuredCycles = 812.5;
  A.CSource = "void potrf8(double*, double*);";
  A.SoBytes = std::string("\x7f""ELF\x00\x01binary", 12);

  ArtifactMsg D;
  std::string Err;
  ASSERT_TRUE(decodeArtifact(encodeArtifact(A), D, Err)) << Err;
  EXPECT_EQ(D.Key, A.Key);
  EXPECT_EQ(D.FuncName, A.FuncName);
  EXPECT_EQ(D.IsaName, A.IsaName);
  EXPECT_EQ(D.NumParams, A.NumParams);
  EXPECT_EQ(D.Batched, A.Batched);
  EXPECT_EQ(D.StrategyName, A.StrategyName);
  EXPECT_EQ(D.BatchThreads, 8);
  EXPECT_EQ(D.Choice, A.Choice);
  EXPECT_EQ(D.StaticCost, A.StaticCost);
  EXPECT_EQ(D.Measured, A.Measured);
  EXPECT_EQ(D.MeasuredCycles, A.MeasuredCycles);
  EXPECT_EQ(D.CSource, A.CSource);
  EXPECT_EQ(D.SoBytes, A.SoBytes);

  std::string Enc = encodeArtifact(A);
  for (size_t Cut : {size_t(0), size_t(3), Enc.size() / 2, Enc.size() - 1})
    EXPECT_FALSE(decodeArtifact(Enc.substr(0, Cut), D, Err));
}

TEST(Protocol, RequestToServiceArgsValidates) {
  Request R = potrfRequest("net_ok", avxIsa());
  GenOptions O;
  service::RequestOptions Req;
  std::string Err;
  ASSERT_TRUE(requestToServiceArgs(R, O, Req, Err)) << Err;
  EXPECT_EQ(std::string(O.Isa->Name), "avx");
  EXPECT_EQ(O.FuncName, "net_ok");
  EXPECT_FALSE(Req.Strategy.has_value());
  EXPECT_FALSE(Req.Measure.has_value());

  R.StrategyName = "vec";
  R.MeasureOverride = 0;
  R.Threads = 3;
  ASSERT_TRUE(requestToServiceArgs(R, O, Req, Err));
  EXPECT_EQ(*Req.Strategy, BatchStrategy::InstanceParallel);
  EXPECT_EQ(*Req.Measure, false);
  EXPECT_EQ(*Req.Threads, 3);

  R.StrategyName = "fused";
  ASSERT_TRUE(requestToServiceArgs(R, O, Req, Err));
  EXPECT_EQ(*Req.Strategy, BatchStrategy::InstanceParallelFused);

  R.Threads = 0;
  ASSERT_TRUE(requestToServiceArgs(R, O, Req, Err));
  EXPECT_FALSE(Req.Threads.has_value());

  R.StrategyName = "bogus";
  EXPECT_FALSE(requestToServiceArgs(R, O, Req, Err));
  R.StrategyName.clear();
  R.OptionsText = "isa=vax11\n";
  EXPECT_FALSE(requestToServiceArgs(R, O, Req, Err));
  R.OptionsText = "func=8startsWithDigit\n";
  EXPECT_FALSE(requestToServiceArgs(R, O, Req, Err));
  R.OptionsText = "no-such-option=1\n";
  EXPECT_FALSE(requestToServiceArgs(R, O, Req, Err));
}

TEST(Protocol, GenOptionsSerializationRoundTrips) {
  GenOptions O;
  O.Isa = &sse2Isa();
  O.FuncName = "roundtrip";
  O.BlockSize = 8;
  O.UnrollK = 3;
  O.EnableCse = false;
  std::string Doc = serializeGenOptions(O);

  GenOptions D;
  std::string Err;
  ASSERT_TRUE(deserializeGenOptions(Doc, D, Err)) << Err;
  EXPECT_EQ(serializeGenOptions(D), Doc);
  EXPECT_EQ(optionsFingerprint(D), optionsFingerprint(O));
  EXPECT_EQ(std::string(D.Isa->Name), "sse2");
  EXPECT_EQ(D.BlockSize, 8);
  EXPECT_FALSE(D.EnableCse);
}

TEST(Protocol, ServiceConfigSerializationRoundTrips) {
  service::ServiceConfig C;
  C.MemCapacity = 7;
  C.CacheDir = "/tmp/somewhere";
  C.Measure = true;
  C.Strategy = BatchStrategy::InstanceParallelFused;
  C.BatchThreads = 6;
  C.CacheMaxBytes = 1 << 20;
  C.PrefetchWorkers = 5;
  std::string Doc = service::serializeServiceConfig(C);

  service::ServiceConfig D;
  std::string Err;
  ASSERT_TRUE(service::deserializeServiceConfig(Doc, D, Err)) << Err;
  EXPECT_EQ(service::serializeServiceConfig(D), Doc);
  EXPECT_EQ(D.MemCapacity, 7u);
  EXPECT_EQ(D.CacheDir, "/tmp/somewhere");
  EXPECT_TRUE(D.Measure);
  EXPECT_EQ(D.Strategy, BatchStrategy::InstanceParallelFused);
  EXPECT_EQ(D.BatchThreads, 6);
  EXPECT_EQ(D.CacheMaxBytes, 1 << 20);
  EXPECT_EQ(D.PrefetchWorkers, 5);

  EXPECT_FALSE(service::applyServiceConfigOption(D, "mem-capacity", "0",
                                                 Err));
  EXPECT_FALSE(service::applyServiceConfigOption(D, "strategy", "bogus",
                                                 Err));
  EXPECT_FALSE(service::applyServiceConfigOption(D, "batch-threads", "-1",
                                                 Err));
  EXPECT_FALSE(service::applyServiceConfigOption(D, "cache-max-bytes", "x",
                                                 Err));
  EXPECT_FALSE(service::applyServiceConfigOption(D, "nope", "1", Err));
}

TEST(Protocol, ErrorPayloadRoundTripsTheCode) {
  std::string Payload =
      encodeErrorPayload(service::Errc::ParseError, "parse error: line 3");
  std::optional<service::Errc> Code;
  std::string Msg;
  decodeErrorPayload(Payload, Code, Msg);
  ASSERT_TRUE(Code.has_value());
  EXPECT_EQ(*Code, service::Errc::ParseError);
  EXPECT_EQ(Msg, "parse error: line 3");

  // A message that merely *looks* prefixed must not decode as a code, and
  // untagged payloads (pre-code daemons) survive as plain messages.
  decodeErrorPayload("parse error: not a token", Code, Msg);
  EXPECT_FALSE(Code.has_value());
  EXPECT_EQ(Msg, "parse error: not a token");
  decodeErrorPayload("no separator here", Code, Msg);
  EXPECT_FALSE(Code.has_value());
  // An ERR frame claiming success is nonsense; "ok" must not decode.
  decodeErrorPayload("ok: all good", Code, Msg);
  EXPECT_FALSE(Code.has_value());
  EXPECT_EQ(Msg, "ok: all good");
}

TEST(Protocol, ParseAddrForms) {
  ParsedAddr P;
  std::string Err;
  ASSERT_TRUE(parseAddr("unix:/run/sld.sock", P, Err));
  EXPECT_TRUE(P.IsUnix);
  EXPECT_EQ(P.UnixPath, "/run/sld.sock");
  ASSERT_TRUE(parseAddr("/tmp/x.sock", P, Err));
  EXPECT_TRUE(P.IsUnix);
  ASSERT_TRUE(parseAddr("tcp:localhost:9000", P, Err));
  EXPECT_FALSE(P.IsUnix);
  EXPECT_EQ(P.Host, "localhost");
  EXPECT_EQ(P.Port, 9000);
  ASSERT_TRUE(parseAddr("127.0.0.1:81", P, Err));
  EXPECT_EQ(P.Host, "127.0.0.1");
  EXPECT_EQ(P.Port, 81);
  ASSERT_TRUE(parseAddr(":8080", P, Err));
  EXPECT_EQ(P.Host, "127.0.0.1");
  EXPECT_FALSE(parseAddr("justaname", P, Err));
  EXPECT_FALSE(parseAddr("host:", P, Err));
  EXPECT_FALSE(parseAddr("host:99999", P, Err));
  EXPECT_FALSE(parseAddr("host:12ab", P, Err));
}

//===----------------------------------------------------------------------===//
// Server + Client end to end
//===----------------------------------------------------------------------===//

/// A server over a temp Unix socket plus its backing service.
struct TestDaemon {
  explicit TestDaemon(service::ServiceConfig SC = {},
                      ServerConfig NC = {}) // NOLINT
      : Svc(std::move(SC)) {
    if (NC.UnixPath.empty())
      NC.UnixPath = Dir.Path + "/sld.sock";
    Srv.emplace(Svc, NC);
    std::string Err;
    Ok = Srv->start(Err);
    if (!Ok)
      ADD_FAILURE() << "server start failed: " << Err;
  }

  Client client() {
    std::string Err;
    auto C = Client::connect(Srv->unixPath(), Err);
    EXPECT_TRUE(C) << Err;
    return std::move(*C);
  }

  TempDir Dir;
  service::KernelService Svc;
  std::optional<Server> Srv;
  bool Ok = false;
};

TEST(SldServer, PingStatsAndGetServeOverUnixSocket) {
  service::ServiceConfig SC;
  SC.UseCompiler = false; // portable: source-only artifacts
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  Client C = D.client();

  std::string Err;
  EXPECT_TRUE(C.ping(Err)) << Err;

  ArtifactMsg A;
  ASSERT_TRUE(C.get(potrfRequest("net_potrf", scalarIsa()), A, Err)) << Err;
  EXPECT_EQ(A.FuncName, "net_potrf");
  EXPECT_EQ(A.IsaName, "scalar");
  EXPECT_EQ(A.NumParams, 2);
  EXPECT_EQ(A.Key.size(), 16u);
  EXPECT_NE(A.CSource.find("void net_potrf("), std::string::npos);
  EXPECT_TRUE(A.SoBytes.empty()); // no compiler on the daemon

  // A second identical request is a memory-tier hit daemon-side, visible
  // through the STATS verb.
  ASSERT_TRUE(C.get(potrfRequest("net_potrf", scalarIsa()), A, Err)) << Err;
  std::string Stats;
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  EXPECT_NE(Stats.find("mem-hits=1"), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("generations=1"), std::string::npos) << Stats;
}

TEST(SldServer, ServesOverLoopbackTcp) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  ServerConfig NC;
  NC.TcpPort = 0; // ephemeral
  service::KernelService Svc(SC);
  Server Srv(Svc, NC);
  std::string Err;
  ASSERT_TRUE(Srv.start(Err)) << Err;
  ASSERT_GT(Srv.tcpPort(), 0);

  auto C = Client::connect("127.0.0.1:" + std::to_string(Srv.tcpPort()),
                           Err);
  ASSERT_TRUE(C) << Err;
  EXPECT_TRUE(C->ping(Err)) << Err;
  ArtifactMsg A;
  ASSERT_TRUE(C->get(potrfRequest("tcp_potrf", scalarIsa()), A, Err))
      << Err;
  EXPECT_EQ(A.FuncName, "tcp_potrf");
}

TEST(SldServer, MalformedRequestGetsErrorAndConnectionSurvives) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);

  int Fd = rawConnect(D.Srv->unixPath());
  ASSERT_GE(Fd, 0);
  std::string Err;

  // Unknown verb: ERR response, connection stays usable.
  ASSERT_TRUE(writeFrame(Fd, static_cast<Verb>(0x7f), "???", Err)) << Err;
  Frame F;
  ASSERT_EQ(readFrame(Fd, F, Err), ReadStatus::Ok) << Err;
  EXPECT_EQ(F.verb(), Verb::Error);
  EXPECT_NE(F.Payload.find("unsupported verb"), std::string::npos);

  // Well-framed garbage request payload: ERR, still alive.
  ASSERT_TRUE(writeFrame(Fd, Verb::Get, "not a request", Err)) << Err;
  ASSERT_EQ(readFrame(Fd, F, Err), ReadStatus::Ok) << Err;
  EXPECT_EQ(F.verb(), Verb::Error);

  // Valid frame, invalid LA program: ERR with the parse diagnostic.
  Request Bad;
  Bad.LaSource = "Mat A(8, 8) <In;"; // syntax error
  ASSERT_TRUE(writeFrame(Fd, Verb::Get, encodeRequest(Bad), Err)) << Err;
  ASSERT_EQ(readFrame(Fd, F, Err), ReadStatus::Ok) << Err;
  EXPECT_EQ(F.verb(), Verb::Error);
  EXPECT_NE(F.Payload.find("parse error"), std::string::npos) << F.Payload;

  // The same connection still serves a good request afterwards.
  ASSERT_TRUE(writeFrame(Fd, Verb::Get,
                         encodeRequest(potrfRequest("after_err",
                                                    scalarIsa())),
                         Err))
      << Err;
  ASSERT_EQ(readFrame(Fd, F, Err), ReadStatus::Ok) << Err;
  EXPECT_EQ(F.verb(), Verb::Artifact);
  close(Fd);
}

TEST(SldServer, OversizedAndTornClientFramesDoNotKillTheDaemon) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  ServerConfig NC;
  NC.MaxPayload = 4096;
  TestDaemon D(SC, NC);
  ASSERT_TRUE(D.Ok);

  {
    // Declare a payload over the server's cap; the server answers ERR and
    // hangs up without reading it.
    int Fd = rawConnect(D.Srv->unixPath());
    ASSERT_GE(Fd, 0);
    std::string Err;
    std::string Hdr = "sld2";
    Hdr.push_back(0x01);
    uint32_t Len = 1u << 20;
    for (int I = 0; I < 4; ++I)
      Hdr.push_back(static_cast<char>((Len >> (8 * I)) & 0xff));
    ASSERT_EQ(write(Fd, Hdr.data(), Hdr.size()),
              static_cast<ssize_t>(Hdr.size()));
    Frame F;
    ASSERT_EQ(readFrame(Fd, F, Err), ReadStatus::Ok) << Err;
    EXPECT_EQ(F.verb(), Verb::Error);
    EXPECT_NE(F.Payload.find("exceeds"), std::string::npos);
    EXPECT_EQ(readFrame(Fd, F, Err), ReadStatus::Eof);
    close(Fd);
  }
  {
    // A client dying mid-frame must only cost its own connection.
    int Fd = rawConnect(D.Srv->unixPath());
    ASSERT_GE(Fd, 0);
    ASSERT_EQ(write(Fd, "sld2\x01", 5), 5);
    close(Fd);
  }
  // The daemon still serves fresh connections.
  Client C = D.client();
  std::string Err;
  EXPECT_TRUE(C.ping(Err)) << Err;
}

TEST(SldServer, ConcurrentClientsOnOneKeySingleFlight) {
  service::ServiceConfig SC;
  SC.UseCompiler = false; // deterministic and portable
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);

  // Multi-HLAC program: generation is slow enough that all clients pile
  // onto the in-flight miss.
  GenOptions O;
  O.Isa = &scalarIsa();
  O.FuncName = "kf_net";
  Request R;
  R.LaSource = la::kalmanSource(8, 8);
  R.OptionsText = serializeGenOptions(O);

  const int NumClients = 6;
  std::vector<Client> Clients;
  for (int I = 0; I < NumClients; ++I)
    Clients.push_back(D.client());

  std::atomic<int> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::string> Keys(NumClients);
  std::vector<std::string> Errors(NumClients);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumClients; ++T)
    Threads.emplace_back([&, T] {
      ++Ready;
      while (!Go.load())
        std::this_thread::yield();
      ArtifactMsg A;
      std::string Err;
      if (Clients[T].get(R, A, Err))
        Keys[T] = A.Key;
      else
        Errors[T] = Err;
    });
  while (Ready.load() < NumClients)
    std::this_thread::yield();
  Go = true;
  for (auto &T : Threads)
    T.join();

  for (int T = 0; T < NumClients; ++T) {
    ASSERT_FALSE(Keys[T].empty()) << Errors[T];
    EXPECT_EQ(Keys[T], Keys[0]);
  }
  // The acceptance bar: N concurrent sockets, one generation.
  service::ServiceStats St = D.Svc.stats();
  EXPECT_EQ(St.Generations, 1);
  EXPECT_EQ(St.Misses, 1);
  EXPECT_EQ(St.MemHits + St.FlightJoins, NumClients - 1);
}

TEST(SldServer, WarmThenGetIsAWarmHit) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  Client C = D.client();

  Request R = potrfRequest("warm_potrf", scalarIsa());
  std::string Err;
  ASSERT_TRUE(C.warm(R, Err)) << Err;
  // warm() acks at queue time; drain the pool for determinism.
  D.Svc.drainPrefetches();
  service::ServiceStats St = D.Svc.stats();
  EXPECT_EQ(St.Prefetches, 1);
  EXPECT_EQ(St.Generations, 1);

  ArtifactMsg A;
  ASSERT_TRUE(C.get(R, A, Err)) << Err;
  EXPECT_EQ(A.FuncName, "warm_potrf");
  St = D.Svc.stats();
  EXPECT_EQ(St.Generations, 1) << "the get must ride the warmed entry";
  EXPECT_EQ(St.MemHits, 1);

  // A malformed warm request fails loudly at the client -- both bad
  // options and a program that does not parse.
  Request Bad = R;
  Bad.StrategyName = "bogus";
  EXPECT_FALSE(C.warm(Bad, Err));
  EXPECT_NE(Err.find("bogus"), std::string::npos);
  Request Unparseable = R;
  Unparseable.LaSource = "Mat A(8, 8) <In;";
  EXPECT_FALSE(C.warm(Unparseable, Err));
  EXPECT_NE(Err.find("parse error"), std::string::npos) << Err;
  EXPECT_EQ(D.Svc.stats().Prefetches, 1) << "nothing was queued";
}

TEST(SldServer, RemoteArtifactMatchesLocalServiceExactly) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  TempDir LocalDir, RemoteDir;

  GenOptions O;
  O.Isa = &hostIsa();
  O.FuncName = "potrf_e2e";
  const int N = 8;
  std::string Src = la::potrfSource(N);

  // Reference: a local service with its own cache.
  service::ServiceConfig LocalSC;
  LocalSC.CacheDir = LocalDir.Path;
  service::KernelService Local(LocalSC);
  service::GetResult LocalR = Local.get(Src, O);
  ASSERT_TRUE(LocalR) << LocalR.Error;
  ASSERT_TRUE(LocalR->isCallable());

  // Remote: the same request through a daemon with its own disk tier (so
  // both kernels are compiled under the disk tier's portable flag set and
  // the numerics are bit-comparable).
  service::ServiceConfig SC;
  SC.CacheDir = RemoteDir.Path;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  Client C = D.client();
  Request R;
  R.LaSource = Src;
  R.OptionsText = serializeGenOptions(O);
  ArtifactMsg A;
  std::string Err;
  ASSERT_TRUE(C.get(R, A, Err)) << Err;

  // Identical provenance and identical emitted C.
  EXPECT_EQ(A.Key, LocalR->Key);
  EXPECT_EQ(A.CSource, LocalR->CSource);
  EXPECT_EQ(A.Choice, LocalR->Choice);
  EXPECT_EQ(A.StaticCost, LocalR->StaticCost);
  EXPECT_EQ(A.NumParams, LocalR->NumParams);
  ASSERT_FALSE(A.SoBytes.empty()) << "daemon has a compiler, so the wire "
                                     "artifact must carry the object";

  // The shipped bytes dlopen into a kernel that agrees numerically with
  // the locally compiled one -- the "no compiler on the client" promise.
  auto K = runtime::JitKernel::loadFromBytes(A.SoBytes, A.FuncName,
                                             A.NumParams, Err);
  ASSERT_TRUE(K) << Err;
  Rng Rand(17);
  std::vector<double> In = spd(N, Rand), InCopy = In;
  std::vector<double> XLocal(N * N, 0.0), XRemote(N * N, 0.0);
  double *LocalBufs[2] = {In.data(), XLocal.data()};
  LocalR->call(LocalBufs);
  double *RemoteBufs[2] = {InCopy.data(), XRemote.data()};
  K->call(RemoteBufs);
  EXPECT_LT(maxAbsDiff(XLocal, XRemote), 1e-15);
  double Nonzero = 0.0;
  for (double V : XRemote)
    Nonzero += std::fabs(V);
  EXPECT_GT(Nonzero, 0.0);
}

// Batched flavor of the end-to-end identity promise: a remote batched
// request pinning the fused strategy and a dispatch width serves the C a
// local service generates for the same request, byte for byte, and the
// resolved strategy/threads ride the wire with the artifact.
TEST(SldServer, RemoteBatchedFusedMatchesLocalByteForByte) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  if (hostIsa().Nu < 2)
    GTEST_SKIP() << "host has no vector ISA";
  TempDir LocalDir, RemoteDir;

  GenOptions O;
  O.Isa = &hostIsa();
  O.FuncName = "potrf_bfe2e";
  std::string Src = la::potrfSource(8);

  service::ServiceConfig LocalSC;
  LocalSC.CacheDir = LocalDir.Path;
  service::KernelService Local(LocalSC);
  service::RequestOptions LocalReq;
  LocalReq.Batched = true;
  LocalReq.Strategy = BatchStrategy::InstanceParallelFused;
  LocalReq.Threads = 2;
  service::GetResult LocalR = Local.get(Src, O, LocalReq);
  ASSERT_TRUE(LocalR) << LocalR.Error;
  EXPECT_EQ(LocalR->Strategy, BatchStrategy::InstanceParallelFused);
  EXPECT_EQ(LocalR->BatchThreads, 2);

  service::ServiceConfig SC;
  SC.CacheDir = RemoteDir.Path;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  Client C = D.client();
  Request R;
  R.LaSource = Src;
  R.OptionsText = serializeGenOptions(O);
  R.Batched = true;
  R.StrategyName = "fused";
  R.Threads = 2;
  ArtifactMsg A;
  std::string Err;
  ASSERT_TRUE(C.get(R, A, Err)) << Err;

  EXPECT_EQ(A.Key, LocalR->Key);
  EXPECT_EQ(A.CSource, LocalR->CSource);
  EXPECT_TRUE(A.Batched);
  EXPECT_EQ(A.StrategyName, "fused");
  EXPECT_EQ(A.BatchThreads, 2);
  ASSERT_FALSE(A.SoBytes.empty());

  // The shipped object carries both batched entries, so a compiler-less
  // client can dispatch it threaded.
  auto K = runtime::JitKernel::loadFromBytes(A.SoBytes, A.FuncName,
                                             A.NumParams, Err,
                                             /*WithBatchEntry=*/true);
  ASSERT_TRUE(K) << Err;
  EXPECT_TRUE(K->hasBatchEntry());
  EXPECT_TRUE(K->hasBatchSpan());
}

// The structured error categories Client::get surfaces: a daemon-side
// generation/parse failure (Daemon + its Errc), a malformed request
// (Daemon + invalid-request), and a hung-up daemon (Transport) -- the
// distinction the facade's fallback backend retries on.
TEST(SldServer, ClientSurfacesStructuredErrorCategories) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  Client C = D.client();

  // Daemon verdict: the LA source does not parse.
  Request Bad;
  Bad.LaSource = "Mat A(8, 8) <In;";
  ArtifactMsg A;
  ClientError E;
  ASSERT_FALSE(C.get(Bad, A, E));
  EXPECT_EQ(E.Category, ErrorCategory::Daemon);
  ASSERT_TRUE(E.Code.has_value());
  EXPECT_EQ(*E.Code, service::Errc::ParseError);
  EXPECT_NE(E.Message.find("parse error"), std::string::npos);

  // Daemon validation: an unknown strategy name in the request.
  Request BadStrategy = potrfRequest("net_cat", scalarIsa());
  BadStrategy.StrategyName = "bogus";
  ASSERT_FALSE(C.get(BadStrategy, A, E));
  EXPECT_EQ(E.Category, ErrorCategory::Daemon);
  ASSERT_TRUE(E.Code.has_value());
  EXPECT_EQ(*E.Code, service::Errc::InvalidRequest);

  // Transport: the daemon dies under the connection.
  D.Srv->stop();
  ASSERT_FALSE(C.get(potrfRequest("net_cat", scalarIsa()), A, E));
  EXPECT_EQ(E.Category, ErrorCategory::Transport);
  EXPECT_FALSE(E.Code.has_value());
}

TEST(SldServer, StopDisconnectsClientsAndUnlinksSocket) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  auto D = std::make_unique<TestDaemon>(SC);
  ASSERT_TRUE(D->Ok);
  std::string Path = D->Srv->unixPath();
  Client C = D->client();
  std::string Err;
  ASSERT_TRUE(C.ping(Err)) << Err;

  D->Srv->stop();
  EXPECT_FALSE(std::filesystem::exists(Path));
  EXPECT_FALSE(C.ping(Err)); // the daemon hung up

  // stop() is idempotent and safe before destruction.
  D->Srv->stop();
}

//===----------------------------------------------------------------------===//
// Server-timing wire field (optional trailing fields, old/new compat)
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestWantTimingIsOptionalAndTrailing) {
  Request R;
  R.LaSource = "Mat A(4,4) <In>;\n";
  R.OptionsText = "isa=avx\nfunc=k\n";

  // Default request: no trailing byte, so the encoding is byte-identical
  // to the pre-timing wire format.
  std::string Plain = encodeRequest(R);
  R.WantTiming = true;
  std::string WithTiming = encodeRequest(R);
  ASSERT_EQ(WithTiming.size(), Plain.size() + 1);
  EXPECT_EQ(WithTiming.substr(0, Plain.size()), Plain);

  // Both forms decode, and absence means false -- exactly what an
  // old-format client's bytes look like to a new daemon.
  Request D;
  std::string Err;
  ASSERT_TRUE(decodeRequest(Plain, D, Err)) << Err;
  EXPECT_FALSE(D.WantTiming);
  ASSERT_TRUE(decodeRequest(WithTiming, D, Err)) << Err;
  EXPECT_TRUE(D.WantTiming);

  // The field is only encoded when set: an explicit 0 byte (or any other
  // value, or trailing garbage after it) is malformed, not "false".
  EXPECT_FALSE(decodeRequest(Plain + std::string(1, '\0'), D, Err));
  EXPECT_FALSE(decodeRequest(Plain + std::string(1, '\x02'), D, Err));
  EXPECT_FALSE(decodeRequest(WithTiming + "x", D, Err));
}

TEST(Protocol, RequestDeadlineIsOptionalAndTrailing) {
  Request R;
  R.LaSource = "Mat A(4,4) <In>;\n";
  R.OptionsText = "isa=avx\nfunc=k\n";

  // No deadline, no timing: byte-identical to the pre-deadline format.
  std::string Plain = encodeRequest(R);
  R.DeadlineMs = 1500;
  std::string WithDeadline = encodeRequest(R);
  // The deadline rides behind the (explicit) timing byte: +1 +4.
  ASSERT_EQ(WithDeadline.size(), Plain.size() + 5);
  EXPECT_EQ(WithDeadline.substr(0, Plain.size()), Plain);
  R.WantTiming = true;
  std::string WithBoth = encodeRequest(R);
  ASSERT_EQ(WithBoth.size(), Plain.size() + 5);

  // All three forms decode; absence means "no deadline" -- what an
  // old-format client's bytes look like to a new daemon.
  Request D;
  std::string Err;
  ASSERT_TRUE(decodeRequest(Plain, D, Err)) << Err;
  EXPECT_EQ(D.DeadlineMs, 0u);
  ASSERT_TRUE(decodeRequest(WithDeadline, D, Err)) << Err;
  EXPECT_EQ(D.DeadlineMs, 1500u);
  EXPECT_FALSE(D.WantTiming);
  ASSERT_TRUE(decodeRequest(WithBoth, D, Err)) << Err;
  EXPECT_EQ(D.DeadlineMs, 1500u);
  EXPECT_TRUE(D.WantTiming);

  // A reused message does not leak the previous request's deadline.
  ASSERT_TRUE(decodeRequest(Plain, D, Err)) << Err;
  EXPECT_EQ(D.DeadlineMs, 0u);

  // Malformed tails: a zero deadline is never encoded so it never
  // decodes, and truncated or over-long tails are rejected.
  ByteWriter Zero;
  Zero.u8(0);
  Zero.u32(0);
  EXPECT_FALSE(decodeRequest(Plain + Zero.take(), D, Err));
  EXPECT_FALSE(
      decodeRequest(WithDeadline.substr(0, WithDeadline.size() - 1), D, Err));
  EXPECT_FALSE(decodeRequest(WithDeadline + "x", D, Err));

  // The daemon stamps an absolute expiry at decode time.
  GenOptions O;
  service::RequestOptions Req;
  Request SR = potrfRequest("ddl", avxIsa());
  ASSERT_TRUE(requestToServiceArgs(SR, O, Req, Err)) << Err;
  EXPECT_EQ(Req.DeadlineUs, 0);
  SR.DeadlineMs = 50;
  ASSERT_TRUE(requestToServiceArgs(SR, O, Req, Err)) << Err;
  EXPECT_GT(Req.DeadlineUs, 0);
}

TEST(Protocol, ArtifactTimingTextIsOptionalAndTrailing) {
  ArtifactMsg A;
  A.Key = "00deadbeef001122";
  A.FuncName = "potrf8";
  A.IsaName = "avx";
  A.NumParams = 2;
  A.CSource = "void potrf8(double*, double*);";

  // No breakdown: byte-identical to the pre-timing format, so old clients
  // decode new daemons.
  std::string Plain = encodeArtifact(A);
  ArtifactMsg D;
  std::string Err;
  ASSERT_TRUE(decodeArtifact(Plain, D, Err)) << Err;
  EXPECT_TRUE(D.TimingText.empty());

  // With a breakdown, the document round-trips as the final field.
  service::RequestTiming TM;
  TM.Tier = "generated";
  TM.CacheUs = 12;
  TM.GenUs = 3400;
  TM.CompileUs = 5600;
  TM.TotalUs = 9100;
  A.TimingText = service::serializeRequestTiming(TM);
  std::string WithTiming = encodeArtifact(A);
  ASSERT_GT(WithTiming.size(), Plain.size());
  ASSERT_TRUE(decodeArtifact(WithTiming, D, Err)) << Err;
  service::RequestTiming Back;
  ASSERT_TRUE(service::deserializeRequestTiming(D.TimingText, Back));
  EXPECT_EQ(Back.Tier, "generated");
  EXPECT_EQ(Back.CacheUs, 12);
  EXPECT_EQ(Back.GenUs, 3400);
  EXPECT_EQ(Back.CompileUs, 5600);
  EXPECT_EQ(Back.TotalUs, 9100);

  // A decoded no-timing payload into a reused message clears the old
  // document rather than leaking the previous request's breakdown.
  ASSERT_TRUE(decodeArtifact(Plain, D, Err)) << Err;
  EXPECT_TRUE(D.TimingText.empty());

  // Trailing bytes after the timing field are still rejected.
  EXPECT_FALSE(decodeArtifact(WithTiming + "x", D, Err));
}

TEST(Protocol, RequestTraceIdIsOptionalAndTrailing) {
  Request R;
  R.LaSource = "Mat A(4,4) <In>;\n";
  R.OptionsText = "isa=avx\nfunc=k\n";

  // No trace id: byte-identical to the pre-trace format.
  std::string Plain = encodeRequest(R);
  R.TraceId = 0x1122334455667788ull;
  R.SpanId = 0x99aabbccddeeff00ull;
  std::string WithTrace = encodeRequest(R);
  // The ids ride behind the timing byte and the deadline word (which may
  // be zero only in this long form): +1 +4 +8 +8.
  ASSERT_EQ(WithTrace.size(), Plain.size() + 21);
  EXPECT_EQ(WithTrace.substr(0, Plain.size()), Plain);

  Request D;
  std::string Err;
  ASSERT_TRUE(decodeRequest(WithTrace, D, Err)) << Err;
  EXPECT_EQ(D.TraceId, 0x1122334455667788ull);
  EXPECT_EQ(D.SpanId, 0x99aabbccddeeff00ull);
  EXPECT_FALSE(D.WantTiming);
  EXPECT_EQ(D.DeadlineMs, 0u);

  // All four tail fields together round-trip.
  R.WantTiming = true;
  R.DeadlineMs = 250;
  ASSERT_TRUE(decodeRequest(encodeRequest(R), D, Err)) << Err;
  EXPECT_TRUE(D.WantTiming);
  EXPECT_EQ(D.DeadlineMs, 250u);
  EXPECT_EQ(D.TraceId, 0x1122334455667788ull);
  EXPECT_EQ(D.SpanId, 0x99aabbccddeeff00ull);

  // A reused message does not leak the previous request's ids.
  ASSERT_TRUE(decodeRequest(Plain, D, Err)) << Err;
  EXPECT_EQ(D.TraceId, 0u);
  EXPECT_EQ(D.SpanId, 0u);

  // A zero trace id is never encoded, so it never decodes: the 21-byte
  // tail with an all-zero id slot is malformed, not "untraced".
  ByteWriter Zero;
  Zero.u8(0);
  Zero.u32(0);
  Zero.u64(0);
  Zero.u64(7);
  EXPECT_FALSE(decodeRequest(Plain + Zero.take(), D, Err));

  // Truncated and over-long trace tails are rejected, never forgiven.
  EXPECT_FALSE(
      decodeRequest(WithTrace.substr(0, WithTrace.size() - 1), D, Err));
  EXPECT_FALSE(decodeRequest(WithTrace + "x", D, Err));
}

TEST(Protocol, ArtifactServerSpansAreOptionalAndTrailing) {
  ArtifactMsg A;
  A.Key = "00deadbeef001122";
  A.FuncName = "potrf8";
  A.IsaName = "avx";
  A.NumParams = 2;
  A.CSource = "void potrf8(double*, double*);";
  service::RequestTiming TM;
  TM.Tier = "generated";
  TM.TotalUs = 10;
  A.TimingText = service::serializeRequestTiming(TM);
  std::string NoSpans = encodeArtifact(A);

  obs::Span S1{"cache.lookup", "service", 100, 5, 7, 0};
  obs::Span S2{"generate", "service", 110, 900, 7, 0};
  A.ServerSpans = {S1, S2};
  std::string WithSpans = encodeArtifact(A);
  ASSERT_GT(WithSpans.size(), NoSpans.size());
  EXPECT_EQ(WithSpans.substr(0, NoSpans.size()), NoSpans);

  ArtifactMsg D;
  std::string Err;
  ASSERT_TRUE(decodeArtifact(WithSpans, D, Err)) << Err;
  ASSERT_EQ(D.ServerSpans.size(), 2u);
  EXPECT_EQ(D.ServerSpans[0].Name, "cache.lookup");
  EXPECT_EQ(D.ServerSpans[0].StartUs, 100);
  EXPECT_EQ(D.ServerSpans[0].DurUs, 5);
  EXPECT_EQ(D.ServerSpans[1].Name, "generate");
  EXPECT_EQ(D.ServerSpans[1].Cat, "service");
  EXPECT_EQ(D.ServerSpans[1].Tid, 7u);

  // A decoded span-free payload into a reused message clears the list.
  ASSERT_TRUE(decodeArtifact(NoSpans, D, Err)) << Err;
  EXPECT_TRUE(D.ServerSpans.empty());

  // An empty span list is never encoded, so a zero count never decodes;
  // a hostile count beyond the cap is rejected before any reserve.
  ByteWriter ZeroCount;
  ZeroCount.u32(0);
  EXPECT_FALSE(decodeArtifact(NoSpans + ZeroCount.take(), D, Err));
  ByteWriter Huge;
  Huge.u32(100000);
  EXPECT_FALSE(decodeArtifact(NoSpans + Huge.take(), D, Err));

  // Truncated and over-long span blobs are malformed.
  EXPECT_FALSE(
      decodeArtifact(WithSpans.substr(0, WithSpans.size() - 1), D, Err));
  EXPECT_FALSE(decodeArtifact(WithSpans + "x", D, Err));
}

TEST(SldServer, ServerTimingArrivesOnMissAndHit) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  Client C = D.client();
  std::string Err;

  // Cache miss: the daemon generated the kernel, and the attached
  // breakdown says so.
  Request R = potrfRequest("timed_potrf", scalarIsa());
  R.WantTiming = true;
  ArtifactMsg A;
  ASSERT_TRUE(C.get(R, A, Err)) << Err;
  ASSERT_FALSE(A.TimingText.empty());
  service::RequestTiming Miss;
  ASSERT_TRUE(service::deserializeRequestTiming(A.TimingText, Miss))
      << A.TimingText;
  EXPECT_EQ(Miss.Tier, "generated");
  EXPECT_GT(Miss.GenUs, 0);
  EXPECT_GE(Miss.TotalUs, Miss.GenUs);

  // Same request again: a memory-tier hit, with its own (hit-shaped)
  // breakdown.
  ASSERT_TRUE(C.get(R, A, Err)) << Err;
  ASSERT_FALSE(A.TimingText.empty());
  service::RequestTiming Hit;
  ASSERT_TRUE(service::deserializeRequestTiming(A.TimingText, Hit));
  EXPECT_EQ(Hit.Tier, "mem");
  EXPECT_EQ(Hit.GenUs, 0);

  // A client that does not ask gets the pre-timing response shape.
  R.WantTiming = false;
  ASSERT_TRUE(C.get(R, A, Err)) << Err;
  EXPECT_TRUE(A.TimingText.empty());

  // The daemon's STATS now carries the cache gauges.
  std::string Stats;
  ASSERT_TRUE(C.stats(Stats, Err)) << Err;
  EXPECT_NE(Stats.find("mem-entries=1"), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("disk-entries="), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("disk-bytes="), std::string::npos) << Stats;
}

TEST(SldServer, ServerSpansRideTheReplyOnlyForTracedTimingRequests) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  Client C = D.client();
  std::string Err;

  // Trace id + want-timing: the daemon ships its span list back, and the
  // generation phase is in it -- the raw material for the merged trace.
  Request R = potrfRequest("span_potrf", scalarIsa());
  R.WantTiming = true;
  R.TraceId = obs::newTraceId();
  R.SpanId = obs::newTraceId();
  ArtifactMsg A;
  ASSERT_TRUE(C.get(R, A, Err)) << Err;
  ASSERT_FALSE(A.ServerSpans.empty());
  bool SawGenerate = false;
  for (const obs::Span &S : A.ServerSpans)
    SawGenerate = SawGenerate || S.Name == "generate";
  EXPECT_TRUE(SawGenerate) << A.ServerSpans.size() << " spans, no generate";

  // Want-timing alone is exactly what an old client sends: it must keep
  // getting the old reply shape (breakdown text, no span field).
  Request R2 = potrfRequest("span_potrf2", scalarIsa());
  R2.WantTiming = true;
  ASSERT_TRUE(C.get(R2, A, Err)) << Err;
  EXPECT_FALSE(A.TimingText.empty());
  EXPECT_TRUE(A.ServerSpans.empty());

  // A trace id without want-timing tags the daemon's own records but
  // ships nothing back.
  Request R3 = potrfRequest("span_potrf3", scalarIsa());
  R3.TraceId = obs::newTraceId();
  R3.SpanId = obs::newTraceId();
  ASSERT_TRUE(C.get(R3, A, Err)) << Err;
  EXPECT_TRUE(A.TimingText.empty());
  EXPECT_TRUE(A.ServerSpans.empty());
}

TEST(SldServer, MetricsVerbReturnsTheScrape) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  Client C = D.client();
  std::string Err;

  ArtifactMsg A;
  ASSERT_TRUE(C.get(potrfRequest("metrics_potrf", scalarIsa()), A, Err))
      << Err;
  std::string Text;
  ASSERT_TRUE(C.metrics(Text, Err)) << Err;
  // The registry scrape: the GET above must show up in the server
  // histogram expansion and in the per-kernel/per-peer top-K tables.
  EXPECT_NE(Text.find("server.get.us.count="), std::string::npos) << Text;
  EXPECT_NE(Text.find("server.get.us.p99-us="), std::string::npos);
  EXPECT_NE(Text.find("top.kernel.metrics_potrf.count=1"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("top.peer.unix.count="), std::string::npos) << Text;

  // Globally sorted keys: every line's key must be >= its predecessor's.
  std::string Prev;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol == std::string::npos ? Text.size() : Eol + 1;
    size_t Eq = Line.find('=');
    ASSERT_NE(Eq, std::string::npos) << "not key=value: " << Line;
    std::string Key = Line.substr(0, Eq);
    // The top-K tables are appended after the sorted registry dump and
    // sort within themselves.
    if (Key.rfind("top.", 0) == 0)
      break;
    EXPECT_LE(Prev, Key) << "unsorted scrape at " << Key;
    Prev = Key;
  }
}

//===----------------------------------------------------------------------===//
// Overload shedding and idle reaping
//===----------------------------------------------------------------------===//

TEST(SldServer, ConnectionCapShedsWithOverloaded) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  ServerConfig NC;
  NC.MaxConns = 2;
  TestDaemon D(SC, NC);
  ASSERT_TRUE(D.Ok);
  std::string Err;

  {
    Client C1 = D.client(), C2 = D.client();
    ASSERT_TRUE(C1.ping(Err)) << Err; // both registered server-side
    ASSERT_TRUE(C2.ping(Err)) << Err;

    // The third connection is accepted only to be told "overloaded" and
    // hung up on -- before it sends anything.
    int Fd = rawConnect(D.Srv->unixPath());
    ASSERT_GE(Fd, 0);
    Frame F;
    ASSERT_EQ(readFrame(Fd, F, Err), ReadStatus::Ok) << Err;
    EXPECT_EQ(F.verb(), Verb::Error);
    std::optional<service::Errc> Code;
    std::string Msg;
    decodeErrorPayload(F.Payload, Code, Msg);
    ASSERT_TRUE(Code.has_value()) << F.Payload;
    EXPECT_EQ(*Code, service::Errc::Overloaded);
    EXPECT_EQ(readFrame(Fd, F, Err), ReadStatus::Eof);
    close(Fd);
  }

  // Capacity comes back once the old connections close (the accept loop
  // reaps them lazily, so allow a few attempts).
  bool Served = false;
  for (int I = 0; I < 100 && !Served; ++I) {
    std::string E2;
    auto C = Client::connect(D.Srv->unixPath(), E2);
    Served = C && C->ping(E2);
    if (!Served)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(Served) << "capacity never recovered after clients left";
}

TEST(SldServer, IdleConnectionsAreReapedAfterTimeout) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  ServerConfig NC;
  NC.IdleTimeoutMs = 150;
  TestDaemon D(SC, NC);
  ASSERT_TRUE(D.Ok);
  std::string Err;

  // A connection that never sends a request is hung up on -- in bounded
  // time, not at server shutdown.
  int Fd = rawConnect(D.Srv->unixPath());
  ASSERT_GE(Fd, 0);
  auto Start = std::chrono::steady_clock::now();
  Frame F;
  EXPECT_EQ(readFrame(Fd, F, Err), ReadStatus::Eof);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_LT(ElapsedMs, 5000);
  close(Fd);

  // An active client is unaffected as long as it keeps talking.
  Client C = D.client();
  EXPECT_TRUE(C.ping(Err)) << Err;
}

} // namespace
