//===- tests/baselines_test.cpp - comparator implementations tests ---------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Validates every comparator used by the Fig. 14/15 benchmarks against the
// refblas oracle and, for the applications, against the LA program executed
// with the dense evaluator -- so all benchmark series compute the same
// mathematical function before we compare their speed.
//===----------------------------------------------------------------------===//

#include "baselines/Apps.h"
#include "baselines/Cl1ckBlas.h"
#include "baselines/Naive.h"
#include "baselines/Recursive.h"
#include "baselines/RefBlas.h"
#include "baselines/Smallet.h"
#include "expr/Evaluator.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

using namespace slingen;
using namespace slingen::testdata;

namespace {

//===----------------------------------------------------------------------===//
// HLAC comparators vs refblas.
//===----------------------------------------------------------------------===//

class HlacBaselines : public ::testing::TestWithParam<int> {};

TEST_P(HlacBaselines, PotrfAgree) {
  int N = GetParam();
  Rng R(N);
  auto A = spd(N, R);
  auto Want = A;
  ASSERT_EQ(refblas::potrfUpper(N, Want.data(), N), 0);

  auto Rec = A;
  ASSERT_EQ(recursive::potrfUpper(N, Rec.data(), N), 0);
  EXPECT_LT(maxAbsDiff(Rec, Want), 1e-10 * N);

  for (int Nb : {4, N / 2 > 0 ? N / 2 : 1, N}) {
    auto Blk = A;
    ASSERT_EQ(cl1ck::potrfUpper(N, Nb, Blk.data(), N), 0);
    EXPECT_LT(maxAbsDiff(Blk, Want), 1e-10 * N) << "nb=" << Nb;
  }

  auto Nai = A;
  ASSERT_EQ(naive::potrfUpper(N, Nai.data()), 0);
  EXPECT_LT(maxAbsDiff(Nai, Want), 1e-10 * N);

  auto Sml = A;
  if (apps::potrfSmallet(N, Sml.data())) {
    EXPECT_LT(maxAbsDiff(Sml, Want), 1e-10 * N);
  }
}

TEST_P(HlacBaselines, TrtriAgree) {
  int N = GetParam();
  Rng R(N + 1);
  auto L = lowerTri(N, R);
  auto Want = L;
  refblas::trtriLower(N, Want.data(), N);

  auto Rec = L;
  recursive::trtriLower(N, Rec.data(), N);
  EXPECT_LT(maxAbsDiff(Rec, Want), 1e-9 * N);

  for (int Nb : {4, N / 2 > 0 ? N / 2 : 1, N}) {
    auto Blk = L;
    cl1ck::trtriLower(N, Nb, Blk.data(), N);
    EXPECT_LT(maxAbsDiff(Blk, Want), 1e-9 * N) << "nb=" << Nb;
  }

  auto Nai = L;
  naive::trtriLower(N, Nai.data());
  EXPECT_LT(maxAbsDiff(Nai, Want), 1e-9 * N);

  auto Sml = L;
  if (apps::trtriSmallet(N, Sml.data())) {
    EXPECT_LT(maxAbsDiff(Sml, Want), 1e-9 * N);
  }
}

TEST_P(HlacBaselines, TrsylAgree) {
  int N = GetParam();
  Rng R(N + 2);
  auto L = lowerTri(N, R);
  auto U = upperTri(N, R);
  auto C = general(N, N, R);
  auto Want = C;
  refblas::trsylLowerUpper(N, N, L.data(), N, U.data(), N, Want.data(), N);

  auto Rec = C;
  recursive::trsylLowerUpper(N, N, L.data(), N, U.data(), N, Rec.data(), N);
  EXPECT_LT(maxAbsDiff(Rec, Want), 1e-9 * N);

  for (int Nb : {4, N / 2 > 0 ? N / 2 : 1, N}) {
    auto Blk = C;
    cl1ck::trsylLowerUpper(N, N, Nb, L.data(), N, U.data(), N, Blk.data(),
                           N);
    EXPECT_LT(maxAbsDiff(Blk, Want), 1e-9 * N) << "nb=" << Nb;
  }

  auto Nai = C;
  naive::trsylLowerUpper(N, L.data(), U.data(), Nai.data());
  EXPECT_LT(maxAbsDiff(Nai, Want), 1e-9 * N);

  auto Sml = C;
  if (apps::trsylSmallet(N, L.data(), U.data(), Sml.data())) {
    EXPECT_LT(maxAbsDiff(Sml, Want), 1e-9 * N);
  }
}

TEST_P(HlacBaselines, TrlyaAgree) {
  int N = GetParam();
  Rng R(N + 3);
  auto L = lowerTri(N, R);
  auto S = symmetric(N, R);
  auto Want = S;
  refblas::trlyaLower(N, L.data(), N, Want.data(), N);

  auto Rec = S;
  recursive::trlyaLower(N, L.data(), N, Rec.data(), N);
  EXPECT_LT(maxAbsDiff(Rec, Want), 1e-9 * N);

  for (int Nb : {4, N / 2 > 0 ? N / 2 : 1, N}) {
    auto Blk = S;
    cl1ck::trlyaLower(N, Nb, L.data(), N, Blk.data(), N);
    EXPECT_LT(maxAbsDiff(Blk, Want), 1e-9 * N) << "nb=" << Nb;
  }

  auto Nai = S;
  naive::trlyaLower(N, L.data(), Nai.data());
  EXPECT_LT(maxAbsDiff(Nai, Want), 1e-9 * N);

  auto Sml = S;
  if (apps::trlyaSmallet(N, L.data(), Sml.data())) {
    EXPECT_LT(maxAbsDiff(Sml, Want), 1e-9 * N);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HlacBaselines,
                         ::testing::Values(1, 2, 4, 8, 11, 16, 24, 28, 52));

//===----------------------------------------------------------------------===//
// Residual-based property checks (oracle-independent).
//===----------------------------------------------------------------------===//

TEST(BaselineProperties, RecursivePotrfResidual) {
  for (int N : {8, 24, 52}) {
    Rng R(N * 2);
    auto A = spd(N, R);
    auto U = A;
    ASSERT_EQ(recursive::potrfUpper(N, U.data(), N), 0);
    std::vector<double> Res(N * N, 0.0);
    refblas::gemm(N, N, N, 1.0, U.data(), N, true, U.data(), N, false, 0.0,
                  Res.data(), N);
    EXPECT_LT(maxAbsDiff(Res, A), 1e-10 * N);
    // Strictly-lower triangle zeroed (full storage).
    for (int I = 1; I < N; ++I)
      for (int J = 0; J < I; ++J)
        EXPECT_EQ(U[I * N + J], 0.0);
  }
}

TEST(BaselineProperties, RecursiveTrsylResidual) {
  for (int M : {8, 20})
    for (int N : {8, 24}) {
      Rng R(M * 31 + N);
      auto L = lowerTri(M, R);
      auto U = upperTri(N, R);
      auto C = general(M, N, R);
      auto X = C;
      recursive::trsylLowerUpper(M, N, L.data(), M, U.data(), N, X.data(),
                                 N);
      std::vector<double> Res(M * N, 0.0);
      refblas::gemm(M, N, M, 1.0, L.data(), M, false, X.data(), N, false,
                    0.0, Res.data(), N);
      refblas::gemm(M, N, N, 1.0, X.data(), N, false, U.data(), N, false,
                    1.0, Res.data(), N);
      EXPECT_LT(maxAbsDiff(Res, C), 1e-9 * (M + N)) << M << "x" << N;
    }
}

//===----------------------------------------------------------------------===//
// smallet expression templates.
//===----------------------------------------------------------------------===//

TEST(Smallet, FusedLinearExpression) {
  smallet::Matrix<3, 3> A, B;
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 3; ++J) {
      A(I, J) = I * 3 + J;
      B(I, J) = 1.0;
    }
  smallet::Matrix<3, 3> C;
  C = A + B * 2.0 - A.transpose();
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 3; ++J)
      EXPECT_NEAR(C(I, J), (I * 3 + J) + 2.0 - (J * 3 + I), 1e-15);
}

TEST(Smallet, ProductAgainstRefblas) {
  Rng R(9);
  auto AD = general(5, 7, R);
  auto BD = general(7, 4, R);
  smallet::Map<5, 7> A = smallet::map<5, 7>(AD.data());
  smallet::Map<7, 4> B = smallet::map<7, 4>(BD.data());
  smallet::Matrix<5, 4> C;
  C = A * B;
  std::vector<double> Want(5 * 4, 0.0);
  refblas::gemm(5, 4, 7, 1.0, AD.data(), 7, false, BD.data(), 4, false, 0.0,
                Want.data(), 4);
  for (int I = 0; I < 5; ++I)
    for (int J = 0; J < 4; ++J)
      EXPECT_NEAR(C(I, J), Want[I * 4 + J], 1e-12);
}

TEST(Smallet, MapAliasesCallerMemory) {
  std::vector<double> Buf(4, 0.0);
  auto M = smallet::map<2, 2>(Buf.data());
  M(0, 0) = 3.0;
  M(1, 1) = 4.0;
  EXPECT_EQ(Buf[0], 3.0);
  EXPECT_EQ(Buf[3], 4.0);
}

TEST(Smallet, TriangularSolversRoundTrip) {
  Rng R(10);
  auto LD = lowerTri(6, R);
  auto BD = general(6, 3, R);
  auto L = smallet::map<6, 6>(LD.data());
  smallet::Matrix<6, 3> X;
  X = smallet::map<6, 3>(BD.data());
  smallet::solveLowerInPlace(L, X);
  // L X == B.
  smallet::Matrix<6, 3> Res;
  Res = L * X;
  for (int I = 0; I < 6; ++I)
    for (int J = 0; J < 3; ++J)
      EXPECT_NEAR(Res(I, J), BD[I * 3 + J], 1e-10);
}

//===----------------------------------------------------------------------===//
// Application kernels vs the LA reference.
//===----------------------------------------------------------------------===//

struct KalmanData {
  int N, K;
  std::vector<double> F, B, Q, H, R, u, x, z, P;
};

KalmanData makeKalman(int N, int K, uint64_t Seed) {
  Rng R(Seed);
  KalmanData D;
  D.N = N;
  D.K = K;
  D.F = general(N, N, R);
  D.B = general(N, N, R);
  D.Q = spd(N, R);
  D.H = general(K, N, R);
  D.R = spd(K, R);
  D.u = general(N, 1, R);
  D.x = general(N, 1, R);
  D.z = general(K, 1, R);
  D.P = spd(N, R);
  return D;
}

/// Reference via the LA program + dense evaluator.
void kalmanReference(const KalmanData &D, std::vector<double> &X,
                     std::vector<double> &P) {
  std::string Err;
  auto Prog = la::compileLa(la::kalmanSource(D.N, D.K), Err);
  ASSERT_TRUE(Prog) << Err;
  Env E;
  E.set(Prog->findOperand("F"), D.F);
  E.set(Prog->findOperand("Bm"), D.B);
  E.set(Prog->findOperand("Q"), D.Q);
  E.set(Prog->findOperand("H"), D.H);
  E.set(Prog->findOperand("R"), D.R);
  E.set(Prog->findOperand("P"), D.P);
  E.set(Prog->findOperand("u"), D.u);
  E.set(Prog->findOperand("x"), D.x);
  E.set(Prog->findOperand("z"), D.z);
  evalProgram(*Prog, E);
  X = E.get(Prog->findOperand("x"));
  P = E.get(Prog->findOperand("P"));
}

class KalmanBaselines : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(KalmanBaselines, AllAgree) {
  auto [N, K] = GetParam();
  KalmanData D = makeKalman(N, K, N * 100 + K);
  std::vector<double> WantX, WantP;
  kalmanReference(D, WantX, WantP);

  std::vector<double> Scratch(8 * N * N + 8 * N);

  auto XN = D.x;
  auto PN = D.P;
  naive::kalman(N, K, D.F.data(), D.B.data(), D.Q.data(), D.H.data(),
                D.R.data(), D.u.data(), D.z.data(), XN.data(), PN.data(),
                Scratch.data());
  EXPECT_LT(maxAbsDiff(XN, WantX), 1e-8 * N) << "naive x";
  EXPECT_LT(maxAbsDiff(PN, WantP), 1e-8 * N) << "naive P";

  auto XR = D.x;
  auto PR = D.P;
  apps::kalmanRefblas(N, K, D.F.data(), D.B.data(), D.Q.data(), D.H.data(),
                      D.R.data(), D.u.data(), D.z.data(), XR.data(),
                      PR.data(), Scratch.data());
  EXPECT_LT(maxAbsDiff(XR, WantX), 1e-8 * N) << "refblas x";
  EXPECT_LT(maxAbsDiff(PR, WantP), 1e-8 * N) << "refblas P";

  auto XS = D.x;
  auto PS = D.P;
  if (apps::kalmanSmallet(N, K, D.F.data(), D.B.data(), D.Q.data(),
                          D.H.data(), D.R.data(), D.u.data(), D.z.data(),
                          XS.data(), PS.data())) {
    EXPECT_LT(maxAbsDiff(XS, WantX), 1e-8 * N) << "smallet x";
    EXPECT_LT(maxAbsDiff(PS, WantP), 1e-8 * N) << "smallet P";
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, KalmanBaselines,
                         ::testing::Values(std::pair{4, 4}, std::pair{8, 8},
                                           std::pair{12, 12},
                                           std::pair{28, 12},
                                           std::pair{28, 20}));

TEST(GprBaselines, AllAgree) {
  for (int N : {4, 8, 12, 28}) {
    Rng R(N * 7);
    auto K = spd(N, R);
    auto X = general(N, N, R);
    auto x = general(N, 1, R);
    auto y = general(N, 1, R);

    std::string Err;
    auto Prog = la::compileLa(la::gprSource(N), Err);
    ASSERT_TRUE(Prog) << Err;
    Env E;
    E.set(Prog->findOperand("K"), K);
    E.set(Prog->findOperand("X"), X);
    E.set(Prog->findOperand("x"), x);
    E.set(Prog->findOperand("y"), y);
    evalProgram(*Prog, E);
    double WantPhi = E.get(Prog->findOperand("phi"))[0];
    double WantPsi = E.get(Prog->findOperand("psi"))[0];
    double WantLam = E.get(Prog->findOperand("lambda"))[0];

    std::vector<double> Scratch(N * N + 8 * N);
    double Phi, Psi, Lam;
    naive::gpr(N, K.data(), X.data(), x.data(), y.data(), &Phi, &Psi, &Lam,
               Scratch.data());
    EXPECT_NEAR(Phi, WantPhi, 1e-8 * N);
    EXPECT_NEAR(Psi, WantPsi, 1e-8 * N);
    EXPECT_NEAR(Lam, WantLam, 1e-8 * N);

    apps::gprRefblas(N, K.data(), X.data(), x.data(), y.data(), &Phi, &Psi,
                     &Lam, Scratch.data());
    EXPECT_NEAR(Phi, WantPhi, 1e-8 * N);
    EXPECT_NEAR(Psi, WantPsi, 1e-8 * N);
    EXPECT_NEAR(Lam, WantLam, 1e-8 * N);

    if (apps::gprSmallet(N, K.data(), X.data(), x.data(), y.data(), &Phi,
                         &Psi, &Lam)) {
      EXPECT_NEAR(Phi, WantPhi, 1e-8 * N);
      EXPECT_NEAR(Psi, WantPsi, 1e-8 * N);
      EXPECT_NEAR(Lam, WantLam, 1e-8 * N);
    }
  }
}

TEST(L1aBaselines, AllAgree) {
  for (int N : {4, 8, 12, 28}) {
    Rng R(N * 11);
    auto W = general(N, N, R);
    auto A = general(N, N, R);
    auto x0 = general(N, 1, R);
    auto y = general(N, 1, R);
    auto v1 = general(N, 1, R);
    auto z1 = general(N, 1, R);
    auto v2 = general(N, 1, R);
    auto z2 = general(N, 1, R);
    double Alpha = 0.6, Beta = 0.25, Tau = 0.15;

    std::string Err;
    auto Prog = la::compileLa(la::l1aSource(N), Err);
    ASSERT_TRUE(Prog) << Err;
    Env E;
    E.set(Prog->findOperand("W"), W);
    E.set(Prog->findOperand("A"), A);
    E.set(Prog->findOperand("x0"), x0);
    E.set(Prog->findOperand("y"), y);
    E.set(Prog->findOperand("v1"), v1);
    E.set(Prog->findOperand("z1"), z1);
    E.set(Prog->findOperand("v2"), v2);
    E.set(Prog->findOperand("z2"), z2);
    E.set(Prog->findOperand("alpha"), {Alpha});
    E.set(Prog->findOperand("beta"), {Beta});
    E.set(Prog->findOperand("tau"), {Tau});
    evalProgram(*Prog, E);

    auto CheckOne = [&](auto Run, const char *What) {
      auto V1 = v1, Z1 = z1, V2 = v2, Z2 = z2;
      Run(V1, Z1, V2, Z2);
      EXPECT_LT(maxAbsDiff(V1, E.get(Prog->findOperand("v1"))), 1e-10 * N)
          << What;
      EXPECT_LT(maxAbsDiff(Z1, E.get(Prog->findOperand("z1"))), 1e-10 * N)
          << What;
      EXPECT_LT(maxAbsDiff(V2, E.get(Prog->findOperand("v2"))), 1e-10 * N)
          << What;
      EXPECT_LT(maxAbsDiff(Z2, E.get(Prog->findOperand("z2"))), 1e-10 * N)
          << What;
    };

    std::vector<double> Scratch(8 * N);
    CheckOne(
        [&](auto &V1, auto &Z1, auto &V2, auto &Z2) {
          naive::l1a(N, W.data(), A.data(), x0.data(), y.data(), Alpha, Beta,
                     Tau, V1.data(), Z1.data(), V2.data(), Z2.data(),
                     Scratch.data());
        },
        "naive");
    CheckOne(
        [&](auto &V1, auto &Z1, auto &V2, auto &Z2) {
          apps::l1aRefblas(N, W.data(), A.data(), x0.data(), y.data(), Alpha,
                           Beta, Tau, V1.data(), Z1.data(), V2.data(),
                           Z2.data(), Scratch.data());
        },
        "refblas");
    CheckOne(
        [&](auto &V1, auto &Z1, auto &V2, auto &Z2) {
          ASSERT_TRUE(apps::l1aSmallet(N, W.data(), A.data(), x0.data(),
                                       y.data(), Alpha, Beta, Tau, V1.data(),
                                       Z1.data(), V2.data(), Z2.data()));
        },
        "smallet");
  }
}

} // namespace
