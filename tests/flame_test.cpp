//===- tests/flame_test.cpp - FLAME/Cl1ck engine tests ---------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Variant counts are checked against the FLAME literature (3 Cholesky
// variants, 2 for trsm, 3 for trtri, ...), and every variant of every
// operation is validated numerically: the HLAC is expanded into a basic
// linear algebra program, executed with the dense evaluator, and compared
// against the refblas oracle.
//===----------------------------------------------------------------------===//

#include "baselines/RefBlas.h"
#include "expr/Evaluator.h"
#include "flame/Synthesizer.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

using namespace slingen;
using namespace slingen::flame;
using namespace slingen::testdata;

namespace {

/// Expands the single HLAC of \p P (with everything before it untouched)
/// into basic statements; returns false on failure.
bool expandProgramHlacs(Program &P, const SynthOptions &Opts,
                        Database *DB = nullptr) {
  std::vector<EqStmt> Out;
  std::set<const Operand *> Defined = P.initiallyDefined();
  for (const EqStmt &S : P.stmts()) {
    StmtInfo Info = classifyStmt(S, Defined);
    if (!Info.IsHlac) {
      Out.push_back(S);
      continue;
    }
    HlacMatch M = matchHlac(S, Info.Defines);
    if (!M)
      return false;
    HlacInstance Inst = instanceFromMatch(M);
    if (!expandHlac(Inst, Opts, Out, DB))
      return false;
  }
  P.stmts() = std::move(Out);
  // The expansion must contain no HLACs: every statement is an sBLAC or a
  // scalar computation.
  std::set<const Operand *> Defined2 = P.initiallyDefined();
  for (const EqStmt &S : P.stmts()) {
    StmtInfo Info = classifyStmt(S, Defined2);
    if (Info.IsHlac)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Variant counts (PME + invariant enumeration).
//===----------------------------------------------------------------------===//

HlacInstance instanceOf(Program &P) {
  std::set<const Operand *> Defined = P.initiallyDefined();
  for (const EqStmt &S : P.stmts()) {
    StmtInfo Info = classifyStmt(S, Defined);
    if (Info.IsHlac) {
      HlacMatch M = matchHlac(S, Info.Defines);
      EXPECT_TRUE(M);
      return instanceFromMatch(M);
    }
  }
  ADD_FAILURE() << "no HLAC in program";
  return {};
}

TEST(FlameVariants, CholeskyHasThree) {
  std::string Err;
  auto P = la::compileLa(la::potrfSource(16), Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_EQ(countVariants(instanceOf(*P)), 3);
}

TEST(FlameVariants, TrtriHasThree) {
  std::string Err;
  auto P = la::compileLa(la::trtriSource(16), Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_EQ(countVariants(instanceOf(*P)), 3);
}

TEST(FlameVariants, TrsmHasTwo) {
  Program P;
  Operand *L = P.addOperand("L", 16, 16);
  L->Structure = StructureKind::LowerTriangular;
  Operand *B = P.addOperand("B", 16, 8);
  B->IO = IOKind::Out;
  Operand *C = P.addOperand("C", 16, 8);
  P.append({mul(view(L), view(B)), view(C)});
  EXPECT_EQ(countVariants(instanceOf(P)), 2);
}

TEST(FlameVariants, TrsylHasMany) {
  std::string Err;
  auto P = la::compileLa(la::trsylSource(16), Err);
  ASSERT_TRUE(P) << Err;
  // Two independent update chains of four states each.
  EXPECT_EQ(countVariants(instanceOf(*P)), 16);
}

TEST(FlameVariants, TrlyaHasVariants) {
  std::string Err;
  auto P = la::compileLa(la::trlyaSource(16), Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_GE(countVariants(instanceOf(*P)), 3);
}

//===----------------------------------------------------------------------===//
// Numerical validation of every variant.
//===----------------------------------------------------------------------===//

struct SynthCase {
  const char *Name;
  int N;
  int Variant;
};

void runPotrf(int N, int Variant, int BlockSize) {
  std::string Err;
  auto P = la::compileLa(la::potrfSource(N), Err);
  ASSERT_TRUE(P) << Err;
  SynthOptions Opts;
  Opts.BlockSize = BlockSize;
  Opts.Variant = Variant;
  ASSERT_TRUE(expandProgramHlacs(*P, Opts))
      << "potrf n=" << N << " v=" << Variant;

  Rng R(N * 7 + Variant);
  auto A = spd(N, R);
  Env E;
  E.set(P->findOperand("A"), A);
  evalProgram(*P, E);
  auto X = E.get(P->findOperand("X"));
  // Residual X^T X - A (computed part; X upper triangular).
  std::vector<double> Res(N * N, 0.0);
  refblas::gemm(N, N, N, 1.0, X.data(), N, true, X.data(), N, false, 0.0,
                Res.data(), N);
  EXPECT_LT(maxAbsDiff(Res, A), 1e-9 * N)
      << "n=" << N << " variant=" << Variant << " bs=" << BlockSize;
}

TEST(FlameSynthesis, PotrfAllVariantsAllSizes) {
  for (int N : {1, 2, 3, 4, 5, 8, 11, 12, 16})
    for (int V = 0; V < 3; ++V)
      runPotrf(N, V, 4);
}

TEST(FlameSynthesis, PotrfOtherBlockSizes) {
  for (int BS : {2, 3, 8})
    for (int N : {8, 12, 13})
      runPotrf(N, 0, BS);
}

TEST(FlameSynthesis, TrsmVariantsSidesAndTransposes) {
  // Solve op(T) X = C and X op(T) = C for every triangle/transpose combo.
  for (bool Upper : {false, true})
    for (bool TransA : {false, true})
      for (bool Left : {false, true})
        for (int Variant : {0, 1})
          for (int N : {4, 8, 11}) {
            int M = Left ? N : 6, NC = Left ? 6 : N;
            Program P;
            Operand *T = P.addOperand("T", N, N);
            T->Structure = Upper ? StructureKind::UpperTriangular
                                 : StructureKind::LowerTriangular;
            Operand *X = P.addOperand("X", M, NC);
            X->IO = IOKind::Out;
            Operand *C = P.addOperand("C", M, NC);
            ExprPtr Coef = TransA ? trans(view(T)) : view(T);
            ExprPtr Lhs = Left ? mul(Coef, view(X)) : mul(view(X), Coef);
            P.append({Lhs, view(C)});

            SynthOptions Opts;
            Opts.BlockSize = 4;
            Opts.Variant = Variant;
            ASSERT_TRUE(expandProgramHlacs(P, Opts))
                << "upper=" << Upper << " trans=" << TransA
                << " left=" << Left;

            Rng R(N + Upper * 2 + TransA * 4 + Left * 8);
            auto TD = Upper ? upperTri(N, R) : lowerTri(N, R);
            auto CD = general(M, NC, R);
            Env E;
            E.set(T, TD);
            E.set(C, CD);
            evalProgram(P, E);
            auto XD = E.get(X);
            // Residual op(T) X - C or X op(T) - C.
            std::vector<double> Res(M * NC, 0.0);
            if (Left)
              refblas::gemm(M, NC, N, 1.0, TD.data(), N, TransA, XD.data(),
                            NC, false, 0.0, Res.data(), NC);
            else
              refblas::gemm(M, NC, N, 1.0, XD.data(), NC, false, TD.data(),
                            N, TransA, 0.0, Res.data(), NC);
            EXPECT_LT(maxAbsDiff(Res, CD), 1e-9 * N)
                << "upper=" << Upper << " trans=" << TransA
                << " left=" << Left << " n=" << N << " v=" << Variant;
          }
}

TEST(FlameSynthesis, TrsmVectorRhs) {
  // The Kalman filter's triangular solves with vector right-hand sides.
  for (bool TransA : {false, true})
    for (int N : {4, 8, 12}) {
      Program P;
      Operand *U = P.addOperand("U", N, N);
      U->Structure = StructureKind::UpperTriangular;
      Operand *X = P.addOperand("x", N, 1);
      X->IO = IOKind::Out;
      Operand *C = P.addOperand("c", N, 1);
      ExprPtr Coef = TransA ? trans(view(U)) : view(U);
      P.append({mul(Coef, view(X)), view(C)});
      SynthOptions Opts;
      ASSERT_TRUE(expandProgramHlacs(P, Opts));
      Rng R(N + TransA);
      auto UD = upperTri(N, R);
      auto CD = general(N, 1, R);
      Env E;
      E.set(U, UD);
      E.set(C, CD);
      evalProgram(P, E);
      auto XD = E.get(X);
      std::vector<double> Res(N, 0.0);
      refblas::gemv(N, N, 1.0, UD.data(), N, TransA, XD.data(), 0.0,
                    Res.data());
      EXPECT_LT(maxAbsDiff(Res, CD), 1e-9 * N) << "trans=" << TransA;
    }
}

TEST(FlameSynthesis, TrtriAllVariants) {
  for (int N : {1, 2, 4, 8, 11, 12})
    for (int V = 0; V < 3; ++V) {
      std::string Err;
      auto P = la::compileLa(la::trtriSource(N), Err);
      ASSERT_TRUE(P) << Err;
      SynthOptions Opts;
      Opts.Variant = V;
      ASSERT_TRUE(expandProgramHlacs(*P, Opts)) << "n=" << N << " v=" << V;
      Rng R(N * 3 + V);
      auto L = lowerTri(N, R);
      Env E;
      E.set(P->findOperand("L"), L);
      evalProgram(*P, E);
      auto X = E.get(P->findOperand("X"));
      std::vector<double> Res(N * N, 0.0);
      refblas::gemm(N, N, N, 1.0, L.data(), N, false, X.data(), N, false,
                    0.0, Res.data(), N);
      double MaxOff = 0.0;
      for (int I = 0; I < N; ++I)
        for (int J = 0; J < N; ++J)
          MaxOff = std::max(MaxOff,
                            std::fabs(Res[I * N + J] - (I == J ? 1.0 : 0.0)));
      EXPECT_LT(MaxOff, 1e-9 * N) << "n=" << N << " v=" << V;
    }
}

TEST(FlameSynthesis, TrsylVariantsSweep) {
  std::string Err;
  for (int N : {1, 2, 4, 8, 12})
    for (int V : {0, 3, 7, 15}) {
      auto P = la::compileLa(la::trsylSource(N), Err);
      ASSERT_TRUE(P) << Err;
      SynthOptions Opts;
      Opts.Variant = V;
      if (N == 1 && V > 0)
        continue;
      ASSERT_TRUE(expandProgramHlacs(*P, Opts)) << "n=" << N << " v=" << V;
      Rng R(N * 11 + V);
      auto L = lowerTri(N, R);
      auto U = upperTri(N, R);
      auto C = general(N, N, R);
      Env E;
      E.set(P->findOperand("L"), L);
      E.set(P->findOperand("U"), U);
      E.set(P->findOperand("C"), C);
      evalProgram(*P, E);
      auto X = E.get(P->findOperand("X"));
      std::vector<double> Res(N * N, 0.0);
      refblas::gemm(N, N, N, 1.0, L.data(), N, false, X.data(), N, false,
                    0.0, Res.data(), N);
      refblas::gemm(N, N, N, 1.0, X.data(), N, false, U.data(), N, false,
                    1.0, Res.data(), N);
      EXPECT_LT(maxAbsDiff(Res, C), 1e-8 * N) << "n=" << N << " v=" << V;
    }
}

TEST(FlameSynthesis, TrlyaVariantsSweep) {
  std::string Err;
  for (int N : {1, 2, 4, 8, 12})
    for (int V = 0; V < 3; ++V) {
      auto P = la::compileLa(la::trlyaSource(N), Err);
      ASSERT_TRUE(P) << Err;
      SynthOptions Opts;
      Opts.Variant = V;
      if (N == 1 && V > 0)
        continue;
      ASSERT_TRUE(expandProgramHlacs(*P, Opts)) << "n=" << N << " v=" << V;
      Rng R(N * 13 + V);
      auto L = lowerTri(N, R);
      auto S = symmetric(N, R);
      Env E;
      E.set(P->findOperand("L"), L);
      E.set(P->findOperand("S"), S);
      evalProgram(*P, E);
      auto X = E.get(P->findOperand("X"));
      // Mirror the stored (lower) triangle before checking the residual:
      // statement-level expansion computes the stored part; the C-IR
      // normalization pass handles the mirror in generated code.
      for (int I = 0; I < N; ++I)
        for (int J = I + 1; J < N; ++J)
          X[I * N + J] = X[J * N + I];
      std::vector<double> Res(N * N, 0.0);
      refblas::gemm(N, N, N, 1.0, L.data(), N, false, X.data(), N, false,
                    0.0, Res.data(), N);
      refblas::gemm(N, N, N, 1.0, X.data(), N, false, L.data(), N, true,
                    1.0, Res.data(), N);
      EXPECT_LT(maxAbsDiff(Res, S), 1e-8 * N) << "n=" << N << " v=" << V;
    }
}

TEST(FlameSynthesis, DatabaseRecordsReuse) {
  std::string Err;
  auto P = la::compileLa(la::potrfSource(16), Err);
  ASSERT_TRUE(P) << Err;
  Database DB;
  SynthOptions Opts;
  ASSERT_TRUE(expandProgramHlacs(*P, Opts, &DB));
  // The nu-sized diagonal Cholesky and the panel trsm recur across steps:
  // the database must have seen repeated keys.
  EXPECT_GT(DB.reuseHits(), 0);
  EXPECT_GE(DB.uniqueAlgorithms(), 2);
}

TEST(FlameSynthesis, Fig5ProgramExpands) {
  // The paper's Fig. 5: an sBLAC followed by a Cholesky and a solve, with
  // ow() overwriting. End-to-end statement-level check.
  std::string Err;
  auto P = la::compileLa(la::fig5Source(8, 8), Err);
  ASSERT_TRUE(P) << Err;
  SynthOptions Opts;
  ASSERT_TRUE(expandProgramHlacs(*P, Opts));
  Rng R(99);
  auto H = general(8, 8, R);
  auto Pm = spd(8, R);
  auto Rm = spd(8, R);
  Env E;
  E.set(P->findOperand("H"), H);
  E.set(P->findOperand("P"), Pm);
  E.set(P->findOperand("R"), Rm);
  evalProgram(*P, E);
  // U^T B = P must hold with U^T U = H H^T + R.
  auto U = E.get(P->findOperand("U"));
  auto B = E.get(P->findOperand("B"));
  std::vector<double> Res(8 * 8, 0.0);
  refblas::gemm(8, 8, 8, 1.0, U.data(), 8, true, B.data(), 8, false, 0.0,
                Res.data(), 8);
  EXPECT_LT(maxAbsDiff(Res, Pm), 1e-8);
}

} // namespace
