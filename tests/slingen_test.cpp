//===- tests/slingen_test.cpp - whole-pipeline driver tests ----------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// End-to-end: LA source -> Generator -> C-IR -> interpreter, validated
// against the dense statement evaluator on the same inputs. Covers the
// Table 3 HLACs over sizes and algorithmic variants, the Fig. 5 fragment,
// and the three Fig. 13 applications, across scalar/SSE2/AVX targets.
//===----------------------------------------------------------------------===//

#include "cir/Interp.h"
#include "expr/Evaluator.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "slingen/Normalize.h"
#include "slingen/SLinGen.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

#include <map>

using namespace slingen;
using namespace slingen::testdata;

namespace {

struct NamedData {
  std::string Name;
  std::vector<double> Data;
};

/// Runs source through (a) the dense evaluator and (b) the full generator
/// pipeline + C-IR interpreter, then compares every output operand.
void checkPipeline(const std::string &Source,
                   const std::vector<NamedData> &Inputs,
                   const GenOptions &O, double Tol,
                   const std::vector<int> *ForcedChoice = nullptr) {
  std::string Err;
  auto Ref = la::compileLa(Source, Err);
  ASSERT_TRUE(Ref) << Err;

  // Reference execution.
  Env E;
  for (const NamedData &In : Inputs) {
    const Operand *Op = Ref->findOperand(In.Name);
    ASSERT_NE(Op, nullptr) << In.Name;
    E.set(Op, In.Data);
  }
  evalProgram(*Ref, E);

  // Generated execution.
  auto Gen = la::compileLa(Source, Err);
  ASSERT_TRUE(Gen) << Err;
  Generator G(std::move(*Gen), O);
  ASSERT_TRUE(G.isValid()) << G.error();
  std::optional<GenResult> R =
      ForcedChoice ? G.generate(*ForcedChoice) : G.best(8);
  ASSERT_TRUE(R) << "generation failed";

  std::map<const Operand *, double *> Bufs;
  std::map<std::string, std::vector<double>> Storage;
  for (const Operand *P : R->Func.Params) {
    auto &B = Storage[P->Name];
    B.assign(static_cast<size_t>(P->Rows) * P->Cols, 0.0);
    for (const NamedData &In : Inputs)
      if (In.Name == P->Name)
        B = In.Data;
    Bufs[P] = B.data();
  }
  cir::interpret(R->Func, Bufs);

  // Compare every user-visible output (by name).
  for (const Operand *Op : R->Basic.operands()) {
    if (Op->IsTemp || !Op->isWritable())
      continue;
    const Operand *RefOp = Ref->findOperand(Op->Name);
    ASSERT_NE(RefOp, nullptr) << Op->Name;
    std::vector<double> Want = E.get(RefOp);
    const Operand *Root = Op->root();
    ASSERT_TRUE(Storage.count(Root->Name)) << Root->Name;
    const std::vector<double> &Got = Storage[Root->Name];
    ASSERT_EQ(Want.size(), Got.size());
    double MaxDiff = 0.0;
    for (size_t I = 0; I < Want.size(); ++I)
      MaxDiff = std::max(MaxDiff, std::fabs(Want[I] - Got[I]));
    EXPECT_LT(MaxDiff, Tol) << "output " << Op->Name << " nu=" << O.nu();
  }
}

GenOptions optsFor(const VectorISA &Isa) {
  GenOptions O;
  O.Isa = &Isa;
  return O;
}

const VectorISA &isaForNu(int Nu) {
  switch (Nu) {
  case 1:
    return scalarIsa();
  case 2:
    return sse2Isa();
  case 8:
    return avx512Isa();
  default:
    return avxIsa();
  }
}

//===----------------------------------------------------------------------===//
// Table 3 HLACs through the full pipeline.
//===----------------------------------------------------------------------===//

class PipelineHlac : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineHlac, Potrf) {
  auto [N, Nu] = GetParam();
  Rng R(N * 17 + Nu);
  checkPipeline(la::potrfSource(N), {{"A", spd(N, R)}},
                optsFor(isaForNu(Nu)),
                1e-9 * N);
}

TEST_P(PipelineHlac, Trtri) {
  auto [N, Nu] = GetParam();
  Rng R(N * 19 + Nu);
  checkPipeline(la::trtriSource(N), {{"L", lowerTri(N, R)}},
                optsFor(isaForNu(Nu)),
                1e-8 * N);
}

TEST_P(PipelineHlac, Trsyl) {
  auto [N, Nu] = GetParam();
  Rng R(N * 23 + Nu);
  checkPipeline(la::trsylSource(N),
                {{"L", lowerTri(N, R)},
                 {"U", upperTri(N, R)},
                 {"C", general(N, N, R)}},
                optsFor(isaForNu(Nu)),
                1e-8 * N);
}

TEST_P(PipelineHlac, Trlya) {
  auto [N, Nu] = GetParam();
  Rng R(N * 29 + Nu);
  checkPipeline(la::trlyaSource(N),
                {{"L", lowerTri(N, R)}, {"S", symmetric(N, R)}},
                optsFor(isaForNu(Nu)),
                1e-8 * N);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndIsas, PipelineHlac,
    ::testing::Combine(::testing::Values(1, 2, 4, 5, 8, 11, 12, 16),
                       ::testing::Values(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &I) {
      return "n" + std::to_string(std::get<0>(I.param)) + "_nu" +
             std::to_string(std::get<1>(I.param));
    });

//===----------------------------------------------------------------------===//
// Algorithmic variants through the full pipeline.
//===----------------------------------------------------------------------===//

TEST(PipelineVariants, PotrfAllThree) {
  for (int V = 0; V < 3; ++V) {
    std::vector<int> Choice{V};
    Rng R(101 + V);
    checkPipeline(la::potrfSource(12), {{"A", spd(12, R)}},
                  optsFor(avxIsa()), 1e-8, &Choice);
  }
}

TEST(PipelineVariants, TrsylSeveral) {
  for (int V : {0, 3, 7, 15}) {
    std::vector<int> Choice{V};
    Rng R(202 + V);
    checkPipeline(la::trsylSource(12),
                  {{"L", lowerTri(12, R)},
                   {"U", upperTri(12, R)},
                   {"C", general(12, 12, R)}},
                  optsFor(avxIsa()), 1e-7, &Choice);
  }
}

TEST(PipelineVariants, EnumerateRanksByCost) {
  std::string Err;
  auto P = la::compileLa(la::potrfSource(16), Err);
  ASSERT_TRUE(P) << Err;
  Generator G(std::move(*P), optsFor(avxIsa()));
  ASSERT_TRUE(G.isValid()) << G.error();
  ASSERT_EQ(G.hlacCount(), 1);
  ASSERT_EQ(G.variantCounts()[0], 3);
  std::vector<GenResult> All = G.enumerate(8);
  ASSERT_EQ(All.size(), 3u);
  EXPECT_LE(All[0].Cost, All[1].Cost);
  EXPECT_LE(All[1].Cost, All[2].Cost);
}

TEST(PipelineVariants, DatabaseAccumulatesReuse) {
  std::string Err;
  auto P = la::compileLa(la::potrfSource(16), Err);
  ASSERT_TRUE(P) << Err;
  Generator G(std::move(*P), optsFor(avxIsa()));
  ASSERT_TRUE(G.isValid());
  (void)G.enumerate(3);
  EXPECT_GT(G.database().reuseHits(), 0);
}

//===----------------------------------------------------------------------===//
// Fig. 5 fragment and the Fig. 13 applications.
//===----------------------------------------------------------------------===//

TEST(PipelineApps, Fig5) {
  for (int N : {4, 8, 9}) {
    Rng R(303 + N);
    checkPipeline(la::fig5Source(N, N),
                  {{"H", general(N, N, R)},
                   {"P", spd(N, R)},
                   {"R", spd(N, R)}},
                  optsFor(avxIsa()), 1e-8 * N);
  }
}

TEST(PipelineApps, KalmanFilter) {
  for (int N : {4, 8, 11}) {
    Rng R(404 + N);
    checkPipeline(la::kalmanSource(N, N),
                  {{"F", general(N, N, R)},
                   {"Bm", general(N, N, R)},
                   {"Q", spd(N, R)},
                   {"H", general(N, N, R)},
                   {"R", spd(N, R)},
                   {"P", spd(N, R)},
                   {"u", general(N, 1, R)},
                   {"x", general(N, 1, R)},
                   {"z", general(N, 1, R)}},
                  optsFor(avxIsa()), 1e-7 * N);
  }
}

TEST(PipelineApps, KalmanFixedState) {
  // Fig. 15b: rectangular H (observation size != state size).
  for (int K : {4, 6}) {
    int N = 8;
    Rng R(505 + K);
    checkPipeline(la::kalmanSource(N, K),
                  {{"F", general(N, N, R)},
                   {"Bm", general(N, N, R)},
                   {"Q", spd(N, R)},
                   {"H", general(K, N, R)},
                   {"R", spd(K, R)},
                   {"P", spd(N, R)},
                   {"u", general(N, 1, R)},
                   {"x", general(N, 1, R)},
                   {"z", general(K, 1, R)}},
                  optsFor(avxIsa()), 1e-7 * N);
  }
}

TEST(PipelineApps, GaussianProcess) {
  for (int N : {4, 8, 12}) {
    Rng R(606 + N);
    checkPipeline(la::gprSource(N),
                  {{"K", spd(N, R)},
                   {"X", general(N, N, R)},
                   {"x", general(N, 1, R)},
                   {"y", general(N, 1, R)}},
                  optsFor(avxIsa()), 1e-7 * N);
  }
}

TEST(PipelineApps, L1Analysis) {
  for (int N : {4, 8, 12}) {
    Rng R(707 + N);
    checkPipeline(la::l1aSource(N),
                  {{"W", general(N, N, R)},
                   {"A", general(N, N, R)},
                   {"x0", general(N, 1, R)},
                   {"y", general(N, 1, R)},
                   {"v1", general(N, 1, R)},
                   {"z1", general(N, 1, R)},
                   {"v2", general(N, 1, R)},
                   {"z2", general(N, 1, R)},
                   {"alpha", {0.7}},
                   {"beta", {0.3}},
                   {"tau", {0.11}}},
                  optsFor(avxIsa()), 1e-8 * N);
  }
}

TEST(PipelineApps, ForLoopProgram) {
  // An LA program using the grammar's for-loop with index-dependent
  // slices: blocked row scaling plus a trailing product.
  const char *Src = R"la(
Mat A(8, 8) <In>;
Vec x(8) <In>;
Vec y(8) <Out>;
Vec t(8) <Out>;
Sca a <In>;

for (i = 0:8:4) {
  t(i:i+4) = a * x(i:i+4);
}
y = A * t;
)la";
  Rng R(808);
  checkPipeline(Src,
                {{"A", general(8, 8, R)},
                 {"x", general(8, 1, R)},
                 {"a", {1.75}}},
                optsFor(avxIsa()), 1e-10);
}

//===----------------------------------------------------------------------===//
// Normalization invariants.
//===----------------------------------------------------------------------===//

TEST(Normalization, KalmanBecomesTilable) {
  std::string Err;
  auto P = la::compileLa(la::kalmanSource(8, 8), Err);
  ASSERT_TRUE(P) << Err;
  ASSERT_TRUE(normalizeProgram(*P, Err)) << Err;
  std::set<const Operand *> Defined = P->initiallyDefined();
  for (const EqStmt &S : P->stmts()) {
    StmtInfo Info = classifyStmt(S, Defined);
    if (!Info.IsHlac)
      EXPECT_TRUE(isTilable(S)) << S.str();
    else
      EXPECT_TRUE(isa<ViewExpr>(S.Rhs) || S.Rhs->kind() == ExprKind::Inv)
          << S.str();
  }
}

TEST(Normalization, ThreeFactorProductSplits) {
  // Y = F * P * F^T + Q must split into two statements.
  Program P;
  Operand *F = P.addOperand("F", 6, 6);
  Operand *Pm = P.addOperand("P", 6, 6);
  Operand *Q = P.addOperand("Q", 6, 6);
  Operand *Y = P.addOperand("Y", 6, 6);
  Y->IO = IOKind::Out;
  P.append({view(Y), add(mul(mul(view(F), view(Pm)), trans(view(F))),
                         view(Q))});
  std::string Err;
  ASSERT_TRUE(normalizeProgram(P, Err)) << Err;
  ASSERT_EQ(P.stmts().size(), 2u);
  for (const EqStmt &S : P.stmts())
    EXPECT_TRUE(isTilable(S)) << S.str();
}

TEST(Normalization, MatrixDivisionBecomesReciprocalScale) {
  // x = b / lambda (vector / scalar) becomes t = 1/lambda; x = t * b.
  Program P;
  Operand *B = P.addOperand("b", 8, 1);
  Operand *L = P.addOperand("lambda", 1, 1);
  Operand *X = P.addOperand("x", 8, 1);
  X->IO = IOKind::Out;
  P.append({view(X), divExpr(view(B), view(L))});
  std::string Err;
  ASSERT_TRUE(normalizeProgram(P, Err)) << Err;
  ASSERT_EQ(P.stmts().size(), 2u);
  EXPECT_TRUE(isTilable(P.stmts()[0]));
  EXPECT_TRUE(isTilable(P.stmts()[1]));
}

TEST(Normalization, ScalarSqrtInMatrixStmtIsHoisted) {
  // x = sqrt(alpha) * b: the sqrt must move into a scalar temporary so the
  // remaining statement is a plain scalar-times-vector sBLAC.
  Program P;
  Operand *A = P.addOperand("alpha", 1, 1);
  Operand *B = P.addOperand("b", 8, 1);
  Operand *X = P.addOperand("x", 8, 1);
  X->IO = IOKind::Out;
  P.append({view(X), mul(sqrtExpr(view(A)), view(B))});
  std::string Err;
  ASSERT_TRUE(normalizeProgram(P, Err)) << Err;
  ASSERT_EQ(P.stmts().size(), 2u);
  for (const EqStmt &S : P.stmts())
    EXPECT_TRUE(isTilable(S)) << S.str();

  // And the result is numerically right.
  Env E;
  E.set(A, {2.25});
  std::vector<double> BD(8);
  for (int I = 0; I < 8; ++I)
    BD[I] = I + 1;
  E.set(B, BD);
  evalProgram(P, E);
  auto XD = E.get(X);
  for (int I = 0; I < 8; ++I)
    EXPECT_NEAR(XD[I], 1.5 * (I + 1), 1e-12);
}

} // namespace
