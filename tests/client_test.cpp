//===- tests/client_test.cpp - public client API (sl::Session) tests ------===//
//
// Part of the SLinGen reproduction. MIT license.
//===----------------------------------------------------------------------===//
// The facade: request building/validation, the address grammar, kernels
// served through every backend kind, and -- the satellite contract -- the
// documented sl::Code for each error path (bad source, unknown ISA,
// unreachable daemon, daemon killed mid-session) surfacing identically
// through local and remote backends. Compiler-gated tests prove the
// local/daemon byte + numeric identity the facade promises.
//===----------------------------------------------------------------------===//

#include "slingen/client.h"

#include "isa/ISA.h"
#include "la/Programs.h"
#include "net/Protocol.h"
#include "net/Server.h"
#include "net/Wire.h"
#include "runtime/Jit.h"
#include "service/KernelService.h"
#include "support/AlignedBuffer.h"
#include "support/FaultInject.h"
#include "support/Random.h"

#include "TestData.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <stdlib.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace slingen;
using namespace slingen::testdata;

namespace {

/// RAII temporary directory (socket files, cache dirs).
struct TempDir {
  TempDir() {
    char Tmpl[] = "/tmp/slingen_client_XXXXXX";
    Path = mkdtemp(Tmpl);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string Path;
};

/// A daemon over a temp Unix socket plus its backing service.
struct TestDaemon {
  explicit TestDaemon(service::ServiceConfig SC = {}) : Svc(std::move(SC)) {
    net::ServerConfig NC;
    NC.UnixPath = Dir.Path + "/sld.sock";
    Srv.emplace(Svc, NC);
    std::string Err;
    Ok = Srv->start(Err);
    if (!Ok)
      ADD_FAILURE() << "server start failed: " << Err;
  }

  TempDir Dir;
  service::KernelService Svc;
  std::optional<net::Server> Srv;
  bool Ok = false;
};

/// Session options for a deterministic, compiler-independent local service.
sl::SessionConfig noCompiler() {
  sl::SessionConfig C;
  C.ServiceOptions.emplace_back("use-compiler", "0");
  return C;
}

sl::Result<sl::Request> potrfRequest(const std::string &Func,
                                     const char *Isa = "scalar", int N = 8) {
  return sl::RequestBuilder()
      .source(la::potrfSource(N))
      .name(Func)
      .isa(Isa)
      .build();
}

//===----------------------------------------------------------------------===//
// Status / Result / RequestBuilder
//===----------------------------------------------------------------------===//

TEST(ClientStatus, CodesNameStablyAndStatusFormats) {
  EXPECT_STREQ(sl::codeName(sl::Code::ParseError), "parse-error");
  EXPECT_STREQ(sl::codeName(sl::Code::ConnectFailed), "connect-failed");
  sl::Status Ok = sl::Status::success();
  EXPECT_TRUE(Ok.ok());
  EXPECT_EQ(Ok.str(), "ok");
  sl::Status Bad = sl::Status::failure(sl::Code::NoCompiler, "nope");
  EXPECT_FALSE(Bad);
  EXPECT_EQ(Bad.code(), sl::Code::NoCompiler);
  EXPECT_EQ(Bad.str(), "no-compiler: nope");
}

TEST(ClientBuilder, ValidRequestCarriesCanonicalOptions) {
  auto R = sl::RequestBuilder()
               .source("Mat A(4,4) <In>;\n")
               .name("bld_ok")
               .isa("sse2")
               .option("unroll-k", "3")
               .batched()
               .strategy("fused")
               .threads(2)
               .measure()
               .build();
  ASSERT_TRUE(R) << R.message();
  EXPECT_EQ(R->functionName(), "bld_ok");
  EXPECT_NE(R->optionsText().find("isa=sse2"), std::string::npos);
  EXPECT_NE(R->optionsText().find("unroll-k=3"), std::string::npos);
  EXPECT_TRUE(R->batched());
  EXPECT_EQ(R->strategy(), "fused");
  EXPECT_EQ(R->threads(), 2);
  EXPECT_EQ(R->measure(), 1);
}

TEST(ClientBuilder, InvalidRequestsAreRejectedAtBuild) {
  // No source at all.
  auto NoSource = sl::RequestBuilder().name("x").build();
  EXPECT_EQ(NoSource.code(), sl::Code::InvalidRequest);

  // Unknown ISA: the satellite's "unknown ISA" error path. Caught at
  // build() -- before any backend -- so local and remote sessions see the
  // exact same code by construction.
  auto BadIsa =
      sl::RequestBuilder().source("Mat A(4,4) <In>;\n").isa("vax11").build();
  EXPECT_EQ(BadIsa.code(), sl::Code::InvalidRequest);
  EXPECT_NE(BadIsa.message().find("unknown ISA"), std::string::npos);

  auto BadOption = sl::RequestBuilder()
                       .source("Mat A(4,4) <In>;\n")
                       .option("no-such-knob", "1")
                       .build();
  EXPECT_EQ(BadOption.code(), sl::Code::InvalidRequest);

  auto BadStrategy = sl::RequestBuilder()
                         .source("Mat A(4,4) <In>;\n")
                         .batched()
                         .strategy("bogus")
                         .build();
  EXPECT_EQ(BadStrategy.code(), sl::Code::InvalidRequest);

  auto StrategyNoBatch = sl::RequestBuilder()
                             .source("Mat A(4,4) <In>;\n")
                             .strategy("vec")
                             .build();
  EXPECT_EQ(StrategyNoBatch.code(), sl::Code::InvalidRequest);

  auto ThreadsNoBatch =
      sl::RequestBuilder().source("Mat A(4,4) <In>;\n").threads(4).build();
  EXPECT_EQ(ThreadsNoBatch.code(), sl::Code::InvalidRequest);

  auto MissingFile =
      sl::RequestBuilder().sourceFile("/nonexistent/input.la").build();
  EXPECT_EQ(MissingFile.code(), sl::Code::InvalidRequest);
}

TEST(ClientBuilder, DeadlineIsValidatedAndCarried) {
  auto Neg = sl::RequestBuilder()
                 .source("Mat A(4,4) <In>;\n")
                 .deadlineMs(-5)
                 .build();
  EXPECT_EQ(Neg.code(), sl::Code::InvalidRequest);
  EXPECT_NE(Neg.message().find("deadlineMs"), std::string::npos);

  auto R = sl::RequestBuilder()
               .source("Mat A(4,4) <In>;\n")
               .deadlineMs(2000)
               .build();
  ASSERT_TRUE(R) << R.message();
  EXPECT_EQ(R->deadlineMs(), 2000);

  // Default: no deadline.
  auto Plain = sl::RequestBuilder().source("Mat A(4,4) <In>;\n").build();
  ASSERT_TRUE(Plain);
  EXPECT_EQ(Plain->deadlineMs(), 0);
}

TEST(ClientSession, AddressGrammarIsValidated) {
  auto Empty = sl::Session::open("");
  EXPECT_EQ(Empty.code(), sl::Code::InvalidRequest);
  auto BareAuto = sl::Session::open("auto:");
  EXPECT_EQ(BareAuto.code(), sl::Code::InvalidRequest);
  auto BadServiceKey = [] {
    sl::SessionConfig C;
    C.ServiceOptions.emplace_back("no-such-option", "1");
    return sl::Session::open("local:", C);
  }();
  EXPECT_EQ(BadServiceKey.code(), sl::Code::InvalidRequest);
}

//===----------------------------------------------------------------------===//
// Local backend
//===----------------------------------------------------------------------===//

TEST(ClientLocal, ServesKernelWithProvenance) {
  auto S = sl::Session::open("local:", noCompiler());
  ASSERT_TRUE(S) << S.message();
  EXPECT_EQ(S->backend(), sl::Session::BackendKind::Local);
  EXPECT_TRUE(S->ping());

  auto R = potrfRequest("cl_local");
  ASSERT_TRUE(R) << R.message();
  auto K = S->get(*R);
  ASSERT_TRUE(K) << K.message();
  EXPECT_TRUE(K->valid());
  EXPECT_EQ(K->origin(), sl::Kernel::Origin::Local);
  EXPECT_EQ(K->functionName(), "cl_local");
  EXPECT_EQ(K->isa(), "scalar");
  EXPECT_EQ(K->key().size(), 16u);
  EXPECT_EQ(K->numParams(), 2);
  EXPECT_NE(K->cSource().find("void cl_local("), std::string::npos);

  // use-compiler=0: a source-only kernel answers call() with NoCompiler.
  EXPECT_FALSE(K->callable());
  double Dummy = 0.0;
  double *Bufs[2] = {&Dummy, &Dummy};
  EXPECT_EQ(K->call(Bufs).code(), sl::Code::NoCompiler);

  // A second get is a cache hit on the same service.
  ASSERT_TRUE(S->get(*R));
  auto Stats = S->stats();
  ASSERT_TRUE(Stats) << Stats.message();
  EXPECT_NE(Stats->find("mem-hits=1"), std::string::npos) << *Stats;
  EXPECT_NE(Stats->find("generations=1"), std::string::npos) << *Stats;
}

TEST(ClientLocal, LocalCacheDirAddressPersistsAcrossSessions) {
  TempDir Dir;
  std::string Key;
  {
    auto S = sl::Session::open("local:" + Dir.Path, noCompiler());
    ASSERT_TRUE(S) << S.message();
    auto R = potrfRequest("cl_disk");
    auto K = S->get(*R);
    ASSERT_TRUE(K) << K.message();
    Key = K->key();
  }
  // A fresh session over the same tier serves from disk, not generation.
  auto S2 = sl::Session::open("local:" + Dir.Path, noCompiler());
  ASSERT_TRUE(S2) << S2.message();
  auto R = potrfRequest("cl_disk");
  auto K2 = S2->get(*R);
  ASSERT_TRUE(K2) << K2.message();
  EXPECT_EQ(K2->key(), Key);
  auto Stats = S2->stats();
  ASSERT_TRUE(Stats);
  EXPECT_NE(Stats->find("disk-hits=1"), std::string::npos) << *Stats;
  EXPECT_NE(Stats->find("generations=0"), std::string::npos) << *Stats;
}

TEST(ClientLocal, BadSourceIsParseError) {
  auto S = sl::Session::open("local:", noCompiler());
  ASSERT_TRUE(S);
  auto R = sl::RequestBuilder().source("Mat A(8, 8) <In;\n").build();
  ASSERT_TRUE(R) << "builder does not parse LA; the backend does";
  auto K = S->get(*R);
  EXPECT_FALSE(K);
  EXPECT_EQ(K.code(), sl::Code::ParseError);
  EXPECT_NE(K.message().find("parse error"), std::string::npos);
}

TEST(ClientLocal, WarmThenGetIsAWarmHit) {
  auto S = sl::Session::open("local:", noCompiler());
  ASSERT_TRUE(S);
  auto R = potrfRequest("cl_warm");
  ASSERT_TRUE(S->warm(*R));
  ASSERT_TRUE(S->drain());
  auto K = S->get(*R);
  ASSERT_TRUE(K) << K.message();
  auto Stats = S->stats();
  ASSERT_TRUE(Stats);
  EXPECT_NE(Stats->find("prefetches=1"), std::string::npos) << *Stats;
  EXPECT_NE(Stats->find("generations=1"), std::string::npos) << *Stats;
  EXPECT_NE(Stats->find("mem-hits=1"), std::string::npos) << *Stats;
}

//===----------------------------------------------------------------------===//
// Remote backend
//===----------------------------------------------------------------------===//

TEST(ClientRemote, ServesKernelOverSocketWithSameKeyAsLocal) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);

  auto S = sl::Session::open(D.Srv->unixPath());
  ASSERT_TRUE(S) << S.message();
  EXPECT_EQ(S->backend(), sl::Session::BackendKind::Remote);
  EXPECT_TRUE(S->ping());

  auto R = potrfRequest("cl_remote");
  auto K = S->get(*R);
  ASSERT_TRUE(K) << K.message();
  EXPECT_EQ(K->origin(), sl::Kernel::Origin::Remote);
  EXPECT_EQ(K->functionName(), "cl_remote");
  EXPECT_FALSE(K->callable()); // daemon has no compiler

  // The same request through a local session addresses the same cache
  // identity -- the facade's "one request, one key" promise.
  auto L = sl::Session::open("local:", noCompiler());
  ASSERT_TRUE(L);
  auto KL = L->get(*R);
  ASSERT_TRUE(KL) << KL.message();
  EXPECT_EQ(KL->key(), K->key());
  EXPECT_EQ(KL->cSource(), K->cSource());

  // Daemon-side stats flow through the same accessor.
  auto Stats = S->stats();
  ASSERT_TRUE(Stats) << Stats.message();
  EXPECT_NE(Stats->find("generations=1"), std::string::npos) << *Stats;
}

TEST(ClientRemote, BadSourceIsParseErrorThroughTheWire) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  auto S = sl::Session::open(D.Srv->unixPath());
  ASSERT_TRUE(S) << S.message();

  // The documented code survives the ERR payload round trip.
  auto R = sl::RequestBuilder().source("Mat A(8, 8) <In;\n").build();
  auto K = S->get(*R);
  EXPECT_FALSE(K);
  EXPECT_EQ(K.code(), sl::Code::ParseError);
  EXPECT_NE(K.message().find("parse error"), std::string::npos);

  // And the session survives the error: the next request serves.
  auto Good = potrfRequest("cl_after_err");
  EXPECT_TRUE(S->get(*Good));
}

TEST(ClientRemote, UnreachableDaemonIsConnectFailed) {
  TempDir Dir;
  auto S = sl::Session::open("unix:" + Dir.Path + "/nobody-home.sock");
  EXPECT_FALSE(S);
  EXPECT_EQ(S.code(), sl::Code::ConnectFailed);
}

TEST(ClientRemote, DaemonKilledMidSessionIsTransportError) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  auto S = sl::Session::open(D.Srv->unixPath());
  ASSERT_TRUE(S) << S.message();
  EXPECT_TRUE(S->ping());

  // Kill the daemon under the live session: the established connection
  // dies, the reconnect fails, and the surviving code says "mid-flight
  // death", not "never reachable".
  D.Srv->stop();
  auto R = potrfRequest("cl_killed");
  auto K = S->get(*R);
  EXPECT_FALSE(K);
  EXPECT_EQ(K.code(), sl::Code::TransportError) << K.message();
}

//===----------------------------------------------------------------------===//
// Resilience: retries, old-daemon downgrade
//===----------------------------------------------------------------------===//

TEST(ClientRemote, TransportRetryRecoversAfterDroppedConnection) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  auto S = sl::Session::open(D.Srv->unixPath()); // eager ping, pre-fault
  ASSERT_TRUE(S) << S.message();

  // The next writeFrame anywhere in the process shuts its socket down:
  // the request dies in flight, and the default retry policy (2 retries)
  // must reconnect and serve it without surfacing an error.
  fault::arm("drop-connection", /*Count=*/1);
  auto R = potrfRequest("cl_retry");
  ASSERT_TRUE(R);
  auto K = S->get(*R);
  fault::reset();
  ASSERT_TRUE(K) << K.message();
  EXPECT_EQ(K->functionName(), "cl_retry");

  // With retries disabled the same fault surfaces as a transport error.
  sl::SessionConfig NoRetry;
  NoRetry.MaxRetries = 0;
  auto S0 = sl::Session::open(D.Srv->unixPath(), NoRetry);
  ASSERT_TRUE(S0) << S0.message();
  fault::arm("drop-connection", /*Count=*/1);
  auto K0 = S0->get(*R);
  fault::reset();
  EXPECT_FALSE(K0);
  EXPECT_EQ(K0.code(), sl::Code::TransportError) << K0.message();
}

/// A daemon speaking the pre-deadline wire dialect: requests carrying the
/// trailing want-timing/deadline bytes are rejected as malformed, exactly
/// like a daemon built before those fields existed. Accepted requests get
/// a canned source-only artifact.
struct OldDaemon {
  OldDaemon() {
    Path = Dir.Path + "/old.sock";
    Fd = socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un SA{};
    SA.sun_family = AF_UNIX;
    strncpy(SA.sun_path, Path.c_str(), sizeof(SA.sun_path) - 1);
    Ok = Fd >= 0 &&
         bind(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) == 0 &&
         listen(Fd, 8) == 0;
    if (Ok)
      T = std::thread([this] { serve(); });
  }
  ~OldDaemon() {
    if (Fd >= 0) {
      shutdown(Fd, SHUT_RDWR);
      close(Fd);
    }
    if (T.joinable())
      T.join();
  }

  void serve() {
    for (;;) {
      int C = accept(Fd, nullptr, nullptr);
      if (C < 0)
        return;
      std::string Err;
      net::Frame F;
      while (net::readFrame(C, F, Err) == net::ReadStatus::Ok) {
        if (F.verb() == net::Verb::Ping) {
          net::writeFrame(C, net::Verb::Ok, "", Err);
          continue;
        }
        net::Request R;
        // The old decoder's strictness: any tail bytes are garbage (the
        // in-process decoder is the new one, so emulate by rejecting every
        // tail field it now accepts, trace ids included).
        if (!net::decodeRequest(F.Payload, R, Err) || R.WantTiming ||
            R.DeadlineMs > 0 || R.TraceId != 0) {
          ++Rejected;
          net::writeFrame(C, net::Verb::Error,
                          net::encodeErrorPayload(
                              service::Errc::InvalidRequest,
                              "bad request payload"),
                          Err);
          continue;
        }
        ++Served;
        net::ArtifactMsg A;
        A.Key = "0123456789abcdef";
        A.FuncName = "old_daemon_k";
        A.IsaName = "scalar";
        A.NumParams = 2;
        A.CSource = "void old_daemon_k(double *A, double *X) {}\n";
        net::writeFrame(C, net::Verb::Artifact, net::encodeArtifact(A), Err);
      }
      close(C);
    }
  }

  TempDir Dir;
  std::string Path;
  int Fd = -1;
  bool Ok = false;
  std::atomic<int> Rejected{0}, Served{0};
  std::thread T;
};

TEST(ClientRemote, OldDaemonDowngradeStripsDeadlineAndTiming) {
  OldDaemon D;
  ASSERT_TRUE(D.Ok);
  auto S = sl::Session::open("unix:" + D.Path);
  ASSERT_TRUE(S) << S.message();

  // The old daemon rejects the first (deadline+timing) encoding as
  // malformed; the client must quietly re-ask in the old dialect and
  // still serve the kernel -- minus the breakdown, with the client-side
  // deadline still bounding the wait.
  auto R = sl::RequestBuilder()
               .source(la::potrfSource(8))
               .name("cl_old")
               .isa("scalar")
               .wantTiming()
               .deadlineMs(30000)
               .build();
  ASSERT_TRUE(R) << R.message();
  auto K = S->get(*R);
  ASSERT_TRUE(K) << K.message();
  EXPECT_EQ(K->functionName(), "old_daemon_k");
  EXPECT_EQ(K->timing(), nullptr);
  EXPECT_EQ(D.Rejected.load(), 1);
  EXPECT_EQ(D.Served.load(), 1);
}

TEST(ClientRemote, OldDaemonDowngradeStripsTraceId) {
  OldDaemon D;
  ASSERT_TRUE(D.Ok);
  auto S = sl::Session::open("unix:" + D.Path);
  ASSERT_TRUE(S) << S.message();

  // Even a plain request now rides with a trace id, which the old daemon
  // rejects as trailing garbage; the downgrade must strip it too -- the
  // kernel is served untraced rather than not at all.
  auto R = sl::RequestBuilder()
               .source(la::potrfSource(8))
               .name("cl_old_trace")
               .isa("scalar")
               .build();
  ASSERT_TRUE(R) << R.message();
  auto K = S->get(*R);
  ASSERT_TRUE(K) << K.message();
  EXPECT_EQ(K->functionName(), "old_daemon_k");
  EXPECT_EQ(D.Rejected.load(), 1);
  EXPECT_EQ(D.Served.load(), 1);
}

//===----------------------------------------------------------------------===//
// Fallback backend (auto:)
//===----------------------------------------------------------------------===//

TEST(ClientFallback, PrefersDaemonThenDegradesOnTransportFailure) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);

  auto S = sl::Session::open("auto:" + D.Srv->unixPath(), noCompiler());
  ASSERT_TRUE(S) << S.message();
  EXPECT_EQ(S->backend(), sl::Session::BackendKind::Fallback);

  auto R = potrfRequest("cl_fb");
  auto K1 = S->get(*R);
  ASSERT_TRUE(K1) << K1.message();
  EXPECT_EQ(K1->origin(), sl::Kernel::Origin::Remote);

  // Daemon gone: the same session serves the same request locally, same
  // key, no error surfaced to the caller.
  D.Srv->stop();
  auto K2 = S->get(*R);
  ASSERT_TRUE(K2) << K2.message();
  EXPECT_EQ(K2->origin(), sl::Kernel::Origin::Local);
  EXPECT_EQ(K2->key(), K1->key());
  EXPECT_EQ(K2->cSource(), K1->cSource());
}

TEST(ClientFallback, DaemonVerdictsDoNotFallBack) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  auto S = sl::Session::open("auto:" + D.Srv->unixPath(), noCompiler());
  ASSERT_TRUE(S);

  // A parse error is the daemon's verdict on the request; re-running it
  // locally would only repeat it, so the fallback must not.
  auto Bad = sl::RequestBuilder().source("Mat A(8, 8) <In;\n").build();
  auto K = S->get(*Bad);
  EXPECT_FALSE(K);
  EXPECT_EQ(K.code(), sl::Code::ParseError);
  service::ServiceStats St = D.Svc.stats();
  EXPECT_EQ(St.Errors, 1) << "the daemon, not a local fallback, answered";
}

TEST(ClientFallback, NoDaemonAtAllServesLocallyFromOpen) {
  TempDir Dir;
  auto S = sl::Session::open("auto:" + Dir.Path + "/never-there.sock",
                             noCompiler());
  ASSERT_TRUE(S) << S.message();
  auto R = potrfRequest("cl_fb_cold");
  auto K = S->get(*R);
  ASSERT_TRUE(K) << K.message();
  EXPECT_EQ(K->origin(), sl::Kernel::Origin::Local);
}

//===----------------------------------------------------------------------===//
// Local/daemon identity (the acceptance bar) -- compiler-gated
//===----------------------------------------------------------------------===//

TEST(ClientIdentity, LocalAndDaemonServeBitIdenticalKernels) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  TempDir LocalDir, RemoteDir;
  const int N = 8;

  auto R = potrfRequest("cl_ident", hostIsa().Name, N);
  ASSERT_TRUE(R) << R.message();

  // Local: an in-process service with a disk tier (so the object is
  // compiled under the same portable flag set the daemon uses).
  auto LS = sl::Session::open("local:" + LocalDir.Path);
  ASSERT_TRUE(LS) << LS.message();
  auto LK = LS->get(*R);
  ASSERT_TRUE(LK) << LK.message();
  ASSERT_TRUE(LK->callable());

  // Remote: the same request through a daemon with its own tier.
  service::ServiceConfig SC;
  SC.CacheDir = RemoteDir.Path;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  auto RS = sl::Session::open(D.Srv->unixPath());
  ASSERT_TRUE(RS) << RS.message();
  auto RK = RS->get(*R);
  ASSERT_TRUE(RK) << RK.message();
  ASSERT_TRUE(RK->callable());

  // Identical provenance, identical emitted C, and -- the facade's
  // acceptance bar -- bit-identical compiled kernel bytes.
  EXPECT_EQ(LK->key(), RK->key());
  EXPECT_EQ(LK->cSource(), RK->cSource());
  ASSERT_FALSE(LK->objectBytes().empty());
  EXPECT_EQ(LK->objectBytes(), RK->objectBytes())
      << "local JIT and daemon-shipped objects must match byte for byte";

  // And identical numerics, bit for bit.
  if (LK->hostRunnable()) {
    Rng Rand(17);
    std::vector<double> In = spd(N, Rand), InCopy = In;
    std::vector<double> XL(N * N, 0.0), XR(N * N, 0.0);
    double *LB[2] = {In.data(), XL.data()};
    double *RB[2] = {InCopy.data(), XR.data()};
    ASSERT_TRUE(LK->call(LB));
    ASSERT_TRUE(RK->call(RB));
    EXPECT_EQ(XL, XR);
    double Nonzero = 0.0;
    for (double V : XR)
      Nonzero += std::fabs(V);
    EXPECT_GT(Nonzero, 0.0);
  }

  // Typed misuse: batched dispatch on a non-batched kernel is an
  // InvalidRequest, identically for both origins.
  std::vector<double> B1(N * N, 1.0), B2(N * N, 1.0);
  double *Bufs[2] = {B1.data(), B2.data()};
  EXPECT_EQ(LK->callBatch(2, Bufs).code(), sl::Code::InvalidRequest);
  EXPECT_EQ(RK->callBatch(2, Bufs).code(), sl::Code::InvalidRequest);
}

TEST(ClientIdentity, BatchedKernelDispatchesThroughFacade) {
  if (!runtime::haveSystemCompiler())
    GTEST_SKIP() << "no system C compiler";
  const int N = 4, Count = 5;

  auto R = sl::RequestBuilder()
               .source(la::potrfSource(N))
               .name("cl_batch")
               .isa(hostIsa().Name)
               .batched()
               .strategy("loop")
               .build();
  ASSERT_TRUE(R) << R.message();

  auto S = sl::Session::open("local:");
  ASSERT_TRUE(S) << S.message();
  auto K = S->get(*R);
  ASSERT_TRUE(K) << K.message();
  ASSERT_TRUE(K->batched());
  EXPECT_EQ(K->strategy(), "loop");
  if (!K->hostRunnable())
    GTEST_SKIP() << "host cannot run " << K->isa();

  // Batch of SPD instances; results must match per-instance single calls.
  // Batch buffers are cache-line aligned per the `_batch` ABI contract.
  Rng Rand(23);
  AlignedBuffer ABatch(static_cast<size_t>(Count) * N * N);
  std::vector<double> ASingle;
  for (int B = 0; B < Count; ++B) {
    std::vector<double> A = spd(N, Rand);
    std::copy(A.begin(), A.end(),
              ABatch.begin() + static_cast<size_t>(B) * N * N);
    ASingle.insert(ASingle.end(), A.begin(), A.end());
  }
  AlignedBuffer XBatch(static_cast<size_t>(Count) * N * N);
  std::vector<double> XSingle(static_cast<size_t>(Count) * N * N, 0.0);
  double *BatchBufs[2] = {ABatch.data(), XBatch.data()};
  ASSERT_TRUE(K->callBatch(Count, BatchBufs));
  for (int B = 0; B < Count; ++B) {
    double *Bufs[2] = {ASingle.data() + static_cast<size_t>(B) * N * N,
                       XSingle.data() + static_cast<size_t>(B) * N * N};
    ASSERT_TRUE(K->call(Bufs));
  }
  EXPECT_EQ(maxAbsDiff(XBatch, XSingle), 0.0);
}

//===----------------------------------------------------------------------===//
// Timing breakdown and tracing through the facade
//===----------------------------------------------------------------------===//

TEST(ClientTiming, BreakdownSurfacesLocallyAndOnlyWhenAsked) {
  auto S = sl::Session::open("local:", noCompiler());
  ASSERT_TRUE(S) << S.message();

  auto Timed = sl::RequestBuilder()
                   .source(la::potrfSource(8))
                   .name("timing_potrf")
                   .isa("scalar")
                   .wantTiming()
                   .build();
  ASSERT_TRUE(Timed) << Timed.message();
  EXPECT_TRUE(Timed->wantTiming());

  // Miss: the breakdown says the kernel was generated, and the
  // client-measured round trip bounds the service's own total.
  auto K = S->get(*Timed);
  ASSERT_TRUE(K) << K.message();
  const sl::TimingBreakdown *T = K->timing();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Tier, "generated");
  EXPECT_GT(T->GenUs, 0);
  EXPECT_GE(T->TotalUs, T->GenUs);
  EXPECT_GE(T->RoundTripUs, T->TotalUs);

  // Hit: a fresh handle whose breakdown reports the memory tier.
  K = S->get(*Timed);
  ASSERT_TRUE(K) << K.message();
  T = K->timing();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Tier, "mem");
  EXPECT_EQ(T->GenUs, 0);

  // Not asked: no breakdown, same kernel.
  auto Plain = potrfRequest("timing_potrf");
  ASSERT_TRUE(Plain);
  EXPECT_FALSE(Plain->wantTiming());
  K = S->get(*Plain);
  ASSERT_TRUE(K) << K.message();
  EXPECT_EQ(K->timing(), nullptr);
}

TEST(ClientTiming, BreakdownRidesTheWire) {
  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  auto S = sl::Session::open(D.Srv->unixPath());
  ASSERT_TRUE(S) << S.message();

  auto R = sl::RequestBuilder()
               .source(la::potrfSource(8))
               .name("wire_timing")
               .isa("scalar")
               .wantObject(false)
               .wantTiming()
               .build();
  ASSERT_TRUE(R) << R.message();
  auto K = S->get(*R);
  ASSERT_TRUE(K) << K.message();
  const sl::TimingBreakdown *T = K->timing();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Tier, "generated");
  // The round trip is measured client-side and includes the wire, so it
  // bounds the daemon's own accounting from above.
  EXPECT_GE(T->RoundTripUs, T->TotalUs);
}

TEST(ClientTracing, FacadeCollectsAndExportsSpans) {
  bool WasOn = sl::tracingEnabled();
  sl::clearTrace();
  sl::setTracing(true);
  EXPECT_TRUE(sl::tracingEnabled());

  auto S = sl::Session::open("local:", noCompiler());
  ASSERT_TRUE(S) << S.message();
  auto R = potrfRequest("traced_potrf");
  ASSERT_TRUE(R);
  ASSERT_TRUE(S->get(*R)) << "traced get failed";

  std::string J = sl::exportTraceJson();
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  // The service's generation span must be in the export -- proof the
  // whole stack, not just the facade, records into one tracer.
  EXPECT_NE(J.find("\"name\": \"generate\""), std::string::npos) << J;

  sl::setTracing(WasOn);
  sl::clearTrace();
  // Disabled again: new work records nothing.
  if (!WasOn) {
    ASSERT_TRUE(S->get(*R));
    EXPECT_EQ(sl::exportTraceJson().find("\"name\": \"generate\""),
              std::string::npos);
  }
}

TEST(ClientTracing, MergedTraceSharesOneTraceIdAcrossTheWire) {
  bool WasOn = sl::tracingEnabled();
  sl::clearTrace();
  sl::setTracing(true);

  service::ServiceConfig SC;
  SC.UseCompiler = false;
  TestDaemon D(SC);
  ASSERT_TRUE(D.Ok);
  auto S = sl::Session::open(D.Srv->unixPath());
  ASSERT_TRUE(S) << S.message();

  auto R = sl::RequestBuilder()
               .source(la::potrfSource(8))
               .name("merged_trace")
               .isa("scalar")
               .wantTiming()
               .build();
  ASSERT_TRUE(R) << R.message();
  auto K = S->get(*R);
  ASSERT_TRUE(K) << K.message();

  std::string J = sl::exportTraceJson();
  sl::setTracing(WasOn);
  sl::clearTrace();

  // One export holds the client's round trip AND the daemon's phases --
  // the daemon shipped its span list back on the timed reply.
  EXPECT_NE(J.find("\"name\": \"client-roundtrip\""), std::string::npos)
      << J;
  EXPECT_NE(J.find("\"name\": \"generate\""), std::string::npos) << J;

  // And every stamped span carries the same request trace id: collect the
  // distinct "trace" args across both sides of the wire.
  std::set<std::string> Ids;
  const char *Marker = "\"trace\": \"";
  for (size_t P = J.find(Marker); P != std::string::npos;
       P = J.find(Marker, P + 1))
    Ids.insert(J.substr(P + strlen(Marker), 16));
  EXPECT_EQ(Ids.size(), 1u) << J;
}

} // namespace
