//===- tests/obs_test.cpp - metrics registry and tracer tests -------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The observability layer: histogram bucket boundaries and percentile
// math, concurrent recording, registry reference stability and text
// rendering, and the span tracer's ring/export behavior. The tracer and
// registry are process-global, so tracer tests save and restore the
// enabled flag and clear the ring when done.
//
//===----------------------------------------------------------------------===//

#include "obs/EventLog.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace slingen;
using obs::Histogram;

//===----------------------------------------------------------------------===//
// Histogram buckets
//===----------------------------------------------------------------------===//

TEST(ObsHistogram, BucketBoundaries) {
  // Bucket I covers [2^I, 2^(I+1)); bucket 0 additionally absorbs [0, 2).
  EXPECT_EQ(Histogram::bucketOf(0), 0);
  EXPECT_EQ(Histogram::bucketOf(1), 0);
  EXPECT_EQ(Histogram::bucketOf(2), 1);
  EXPECT_EQ(Histogram::bucketOf(3), 1);
  EXPECT_EQ(Histogram::bucketOf(4), 2);
  EXPECT_EQ(Histogram::bucketOf(7), 2);
  EXPECT_EQ(Histogram::bucketOf(8), 3);
  EXPECT_EQ(Histogram::bucketOf(1023), 9);
  EXPECT_EQ(Histogram::bucketOf(1024), 10);
  EXPECT_EQ(Histogram::bucketOf(1025), 10);
  EXPECT_EQ(Histogram::bucketOf(int64_t(1) << 40), 40);
  // The largest representable duration sits in bucket 62 ([2^62, 2^63));
  // bucket 63 exists only so the index can never run off the array.
  EXPECT_EQ(Histogram::bucketOf(INT64_MAX), 62);
  EXPECT_LT(Histogram::bucketOf(INT64_MAX), Histogram::NumBuckets);
}

TEST(ObsHistogram, EmptySnapshot) {
  Histogram H;
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0);
  EXPECT_EQ(S.Sum, 0);
  EXPECT_EQ(S.Min, 0);
  EXPECT_EQ(S.Max, 0);
  EXPECT_EQ(S.percentile(50), 0.0);
  EXPECT_EQ(S.mean(), 0.0);
}

TEST(ObsHistogram, RecordBasics) {
  Histogram H;
  H.record(1);
  H.record(100);
  H.record(10000);
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 3);
  EXPECT_EQ(S.Sum, 10101);
  EXPECT_EQ(S.Min, 1);
  EXPECT_EQ(S.Max, 10000);
  EXPECT_EQ(S.Buckets[Histogram::bucketOf(1)], 1);
  EXPECT_EQ(S.Buckets[Histogram::bucketOf(100)], 1);
  EXPECT_EQ(S.Buckets[Histogram::bucketOf(10000)], 1);
}

TEST(ObsHistogram, PercentileSingleValue) {
  // All mass at one value: every percentile clamps to that exact value
  // (the interpolation cannot wander outside [Min, Max]).
  Histogram H;
  for (int I = 0; I < 1000; ++I)
    H.record(100);
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.p50(), 100.0);
  EXPECT_EQ(S.p99(), 100.0);
  EXPECT_EQ(S.percentile(0), 100.0);
  EXPECT_EQ(S.percentile(100), 100.0);
}

TEST(ObsHistogram, PercentileBimodal) {
  // 90 fast samples (10us) and 10 slow ones (10000us): p50 must sit in
  // the fast bucket, p99 in the slow one -- the tail-detection property
  // the serving stack relies on.
  Histogram H;
  for (int I = 0; I < 90; ++I)
    H.record(10);
  for (int I = 0; I < 10; ++I)
    H.record(10000);
  Histogram::Snapshot S = H.snapshot();
  EXPECT_GE(S.p50(), 10.0); // clamped to Min
  EXPECT_LT(S.p50(), 16.0); // inside [8, 16), bucket of 10
  EXPECT_GE(S.p99(), 8192.0);    // inside the slow bucket [8192, 16384)
  EXPECT_LE(S.p99(), 10000.0);   // clamped to Max
  EXPECT_DOUBLE_EQ(S.mean(), (90.0 * 10 + 10.0 * 10000) / 100);
}

TEST(ObsHistogram, ConcurrentRecording) {
  Histogram H;
  constexpr int NumThreads = 8, PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&H] {
      for (int I = 0; I < PerThread; ++I)
        H.record((I % 1024) + 1);
    });
  for (std::thread &T : Threads)
    T.join();
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, int64_t(NumThreads) * PerThread);
  int64_t PerThreadSum = 0;
  for (int I = 0; I < PerThread; ++I)
    PerThreadSum += (I % 1024) + 1;
  EXPECT_EQ(S.Sum, NumThreads * PerThreadSum);
  EXPECT_EQ(S.Min, 1);
  EXPECT_EQ(S.Max, 1024);
  int64_t BucketTotal = 0;
  for (int64_t B : S.Buckets)
    BucketTotal += B;
  EXPECT_EQ(BucketTotal, S.Count);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(ObsRegistry, StableReferences) {
  obs::Registry &R = obs::Registry::global();
  obs::Counter &C1 = R.counter("obstest.stable.counter");
  obs::Counter &C2 = R.counter("obstest.stable.counter");
  EXPECT_EQ(&C1, &C2);
  obs::Histogram &H1 = R.histogram("obstest.stable.hist");
  obs::Histogram &H2 = R.histogram("obstest.stable.hist");
  EXPECT_EQ(&H1, &H2);
  // Same name, different kind namespaces: counters and gauges are
  // separate maps, so this is two metrics, not one.
  obs::Gauge &G = R.gauge("obstest.stable.gauge");
  G.set(42);
  EXPECT_EQ(G.value(), 42);
  G.add(-2);
  EXPECT_EQ(G.value(), 40);
}

TEST(ObsRegistry, RenderText) {
  obs::Registry &R = obs::Registry::global();
  R.counter("obstest.render.counter").add(7);
  R.gauge("obstest.render.gauge").set(-3);
  obs::Histogram &H = R.histogram("obstest.render.hist");
  H.record(100);
  H.record(200);
  std::string Text = R.renderText();
  EXPECT_NE(Text.find("obstest.render.counter=7\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.gauge=-3\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.count=2\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.sum-us=300\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.min-us=100\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.max-us=200\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.p50-us="), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.p99-us="), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

namespace {

/// Save/restore the global tracer around a test (it is process state).
class TracerGuard {
public:
  TracerGuard() : WasOn(obs::Tracer::global().enabled()) {
    obs::Tracer::global().clear();
  }
  ~TracerGuard() {
    obs::Tracer::global().setEnabled(WasOn);
    obs::Tracer::global().clear();
  }

private:
  bool WasOn;
};

} // namespace

TEST(ObsTracer, DisabledRecordsNothing) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(false);
  {
    obs::ScopedSpan Span("obstest-disabled", "test");
  }
  EXPECT_EQ(T.size(), 0u);
}

TEST(ObsTracer, ScopedSpanRecordsWhenEnabled) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(true);
  obs::Histogram H;
  {
    obs::ScopedSpan Span("obstest-span", "test", &H);
  }
  EXPECT_EQ(T.size(), 1u);
  EXPECT_EQ(H.snapshot().Count, 1);
  // finish() is idempotent: an early finish plus destruction is one span,
  // one histogram sample.
  obs::ScopedSpan Early("obstest-early", "test", &H);
  Early.finish();
  Early.finish();
  EXPECT_EQ(T.size(), 2u);
  EXPECT_EQ(H.snapshot().Count, 2);
}

TEST(ObsTracer, HistogramRecordsEvenWhenDisabled) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(false);
  obs::Histogram H;
  {
    obs::ScopedSpan Span("obstest-hist-only", "test", &H);
  }
  EXPECT_EQ(T.size(), 0u);    // no span...
  EXPECT_EQ(H.snapshot().Count, 1); // ...but the histogram still sees it
}

TEST(ObsTracer, ChromeExportShape) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(true);
  T.record({"obstest-export", "test", 1000, 250, 3});
  std::string J = T.exportChromeTrace();
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"obstest-export\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(J.find("\"ts\": 1000"), std::string::npos);
  EXPECT_NE(J.find("\"dur\": 250"), std::string::npos);
  // Quotes and backslashes in names must come out escaped, or the export
  // is not JSON.
  T.record({"with\"quote\\", "test", 0, 1, 0});
  J = T.exportChromeTrace();
  EXPECT_NE(J.find("with\\\"quote\\\\"), std::string::npos);
}

TEST(ObsTracer, RingDropsOldest) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(true);
  // Drops must also surface as a scrapeable counter (the registry is
  // process-global and cumulative, so measure the delta).
  int64_t CounterBefore =
      obs::Registry::global().counter("obs.trace_dropped").value();
  constexpr int Recorded = 70000; // > the ring capacity (1 << 16)
  for (int I = 0; I < Recorded; ++I)
    T.record({"obstest-ring", "test", I, 1, 0});
  EXPECT_LT(T.size(), static_cast<size_t>(Recorded));
  EXPECT_EQ(T.dropped(), Recorded - static_cast<int64_t>(T.size()));
  EXPECT_EQ(obs::Registry::global().counter("obs.trace_dropped").value() -
                CounterBefore,
            T.dropped());
  T.clear();
  EXPECT_EQ(T.size(), 0u);
}

//===----------------------------------------------------------------------===//
// Trace ids and the span collector
//===----------------------------------------------------------------------===//

TEST(ObsTraceId, NewTraceIdIsNonZeroAndDistinct) {
  uint64_t A = obs::newTraceId();
  uint64_t B = obs::newTraceId();
  EXPECT_NE(A, 0u);
  EXPECT_NE(B, 0u);
  EXPECT_NE(A, B);
}

TEST(ObsTraceId, ScopedTraceIdStampsSpansAndRestores) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(true);
  obs::SpanCollector C;
  EXPECT_EQ(obs::currentTraceId(), 0u);
  {
    obs::ScopedCollect Install(C);
    {
      obs::ScopedTraceId Scope(0x00c0ffee12345678ull);
      EXPECT_EQ(obs::currentTraceId(), 0x00c0ffee12345678ull);
      obs::ScopedSpan Span("obstest-stamped", "test");
    }
    EXPECT_EQ(obs::currentTraceId(), 0u);
    // A span finished outside any scope stays unstamped.
    obs::ScopedSpan Span("obstest-unstamped", "test");
  }
  ASSERT_EQ(C.Spans.size(), 2u);
  EXPECT_EQ(C.Spans[0].TraceId, 0x00c0ffee12345678ull);
  EXPECT_EQ(C.Spans[1].TraceId, 0u);
  // The stamped span carries its id into the Chrome export as an arg; the
  // unstamped one gets no args clause (count the marker, not just find
  // it).
  std::string J = T.exportChromeTrace();
  EXPECT_NE(J.find("\"trace\": \"00c0ffee12345678\""), std::string::npos)
      << J;
  size_t Args = 0;
  for (size_t P = J.find("\"args\""); P != std::string::npos;
       P = J.find("\"args\"", P + 1))
    ++Args;
  EXPECT_EQ(Args, 1u);
}

TEST(ObsTraceId, SpanCollectorCapturesEvenWhenTracerDisabled) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(false);
  obs::SpanCollector C;
  {
    obs::ScopedCollect Install(C);
    obs::ScopedTraceId Scope(42);
    obs::ScopedSpan Span("obstest-collected", "test");
  }
  // The collector got the span (that is how the daemon ships spans to the
  // client without enabling its own tracer)...
  ASSERT_EQ(C.Spans.size(), 1u);
  EXPECT_EQ(C.Spans[0].Name, "obstest-collected");
  EXPECT_EQ(C.Spans[0].TraceId, 42u);
  // ...and the disabled global tracer saw nothing.
  EXPECT_EQ(T.size(), 0u);
  // Uninstalled again: spans stop flowing into the collector.
  {
    obs::ScopedSpan Span("obstest-uncollected", "test");
  }
  EXPECT_EQ(C.Spans.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(ObsFlightRecorder, RecordsFieldsAndOrder) {
  obs::FlightRecorder &FR = obs::FlightRecorder::global();
  FR.reset();
  FR.record(0x1111, "start", "get", "potrf8", "unix", "-", "-", -1);
  FR.record(0x1111, "done", "get", "potrf8", "unix", "mem", "-", 250);
  FR.record(0x2222, "fail", "warm", "gemm", "1.2.3.4:5", "-",
            "parse-error", 90);
  std::vector<obs::FlightRecorder::Record> S = FR.snapshot();
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0].Seq, 1u);
  EXPECT_EQ(S[0].TraceId, 0x1111u);
  EXPECT_STREQ(S[0].Phase, "start");
  EXPECT_EQ(S[0].LatencyUs, -1);
  EXPECT_STREQ(S[1].Phase, "done");
  EXPECT_STREQ(S[1].Tier, "mem");
  EXPECT_EQ(S[1].LatencyUs, 250);
  EXPECT_STREQ(S[2].Verb, "warm");
  EXPECT_STREQ(S[2].Errc, "parse-error");
  EXPECT_STREQ(S[2].Peer, "1.2.3.4:5");
  // renderText carries the trace id in the same zero-padded hex as the
  // trace export, so grep joins the two.
  std::string Text = FR.renderText();
  EXPECT_NE(Text.find("trace=0000000000001111"), std::string::npos) << Text;
  EXPECT_NE(Text.find("errc=parse-error"), std::string::npos);
  FR.reset();
}

TEST(ObsFlightRecorder, RingWrapsKeepingNewest) {
  obs::FlightRecorder &FR = obs::FlightRecorder::global();
  FR.reset();
  constexpr int N = static_cast<int>(obs::FlightRecorder::Capacity) + 50;
  for (int I = 1; I <= N; ++I)
    FR.record(static_cast<uint64_t>(I), "done", "get", "k", "unix", "mem",
              "-", I);
  EXPECT_EQ(FR.writes(), static_cast<uint64_t>(N));
  std::vector<obs::FlightRecorder::Record> S = FR.snapshot();
  ASSERT_EQ(S.size(), obs::FlightRecorder::Capacity);
  // Oldest first, and the oldest surviving record is exactly the one the
  // 50 extra writes pushed the window up to.
  EXPECT_EQ(S.front().Seq, 51u);
  EXPECT_EQ(S.back().Seq, static_cast<uint64_t>(N));
  for (size_t I = 1; I < S.size(); ++I)
    EXPECT_EQ(S[I].Seq, S[I - 1].Seq + 1);
  // Field consistency survived the wrap: latency mirrors the trace id.
  for (const obs::FlightRecorder::Record &R : S)
    EXPECT_EQ(static_cast<uint64_t>(R.LatencyUs), R.TraceId);
  FR.reset();
}

TEST(ObsFlightRecorder, ConcurrentWritersStayConsistent) {
  obs::FlightRecorder &FR = obs::FlightRecorder::global();
  FR.reset();
  constexpr int NumThreads = 8, PerThread = 4000;
  // Writer K stamps every field from K, so a torn record (fields from two
  // writers) is detectable in any snapshot.
  std::vector<std::thread> Threads;
  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    while (!Stop.load()) {
      for (const obs::FlightRecorder::Record &R : FR.snapshot()) {
        int K = static_cast<int>(R.TraceId) - 1;
        ASSERT_GE(K, 0);
        ASSERT_LT(K, NumThreads);
        EXPECT_EQ(R.LatencyUs, K * 1000);
        EXPECT_EQ(R.Kernel[0], 'k');
        EXPECT_EQ(R.Kernel[1], '0' + K);
      }
    }
  });
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&FR, T] {
      char Kernel[3] = {'k', static_cast<char>('0' + T), 0};
      for (int I = 0; I < PerThread; ++I)
        FR.record(static_cast<uint64_t>(T) + 1, "done", "get", Kernel,
                  "unix", "mem", "-", T * 1000);
    });
  for (std::thread &T : Threads)
    T.join();
  Stop = true;
  Reader.join();
  EXPECT_EQ(FR.writes(), static_cast<uint64_t>(NumThreads) * PerThread);
  // A quiescent snapshot sees a full, strictly consistent ring.
  std::vector<obs::FlightRecorder::Record> S = FR.snapshot();
  EXPECT_EQ(S.size(), obs::FlightRecorder::Capacity);
  for (const obs::FlightRecorder::Record &R : S)
    EXPECT_EQ(R.LatencyUs, (static_cast<int64_t>(R.TraceId) - 1) * 1000);
  FR.reset();
}

TEST(ObsFlightRecorder, DumpToFdIsParseable) {
  obs::FlightRecorder &FR = obs::FlightRecorder::global();
  FR.reset();
  FR.record(0xabcd, "start", "get", "potrf8", "unix", "-", "-", -1);
  FR.record(0xabcd, "done", "get", "potrf8", "unix", "generated", "-",
            1234);
  char Path[] = "/tmp/slingen_obs_dump_XXXXXX";
  int Fd = mkstemp(Path);
  ASSERT_GE(Fd, 0);
  FR.dumpTo(Fd);
  close(Fd);
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Dump = Buf.str();
  unlink(Path);
  EXPECT_NE(Dump.find("flight-recorder dump: 2 records"), std::string::npos)
      << Dump;
  EXPECT_NE(Dump.find("trace=000000000000abcd"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("phase=start"), std::string::npos);
  EXPECT_NE(Dump.find("lat-us=1234"), std::string::npos);
  EXPECT_NE(Dump.find("lat-us=-1"), std::string::npos);
  FR.reset();
}

//===----------------------------------------------------------------------===//
// Event log
//===----------------------------------------------------------------------===//

TEST(ObsEventLog, WritesJsonLinesWithFields) {
  obs::EventLog &L = obs::EventLog::global();
  char Path[] = "/tmp/slingen_obs_events_XXXXXX";
  int Fd = mkstemp(Path);
  ASSERT_GE(Fd, 0);
  close(Fd);
  std::string Err;
  ASSERT_TRUE(L.open(Path, Err)) << Err;
  EXPECT_TRUE(L.enabled());
  L.log(obs::EventLog::Level::Error, 0x2a, "error",
        {{"verb", "get"}, {"msg", "with \"quotes\" and\nnewline"}});
  L.log(obs::EventLog::Level::Warn, 0, "shed", {{"peer", "unix"}});
  L.close();
  EXPECT_FALSE(L.enabled());

  std::ifstream In(Path);
  std::string Line1, Line2;
  ASSERT_TRUE(std::getline(In, Line1));
  ASSERT_TRUE(std::getline(In, Line2));
  unlink(Path);
  EXPECT_NE(Line1.find("\"level\":\"error\""), std::string::npos) << Line1;
  EXPECT_NE(Line1.find("\"trace\":\"000000000000002a\""), std::string::npos);
  EXPECT_NE(Line1.find("\"event\":\"error\""), std::string::npos);
  // Field values arrive JSON-escaped, one event per physical line.
  EXPECT_NE(Line1.find("\\\"quotes\\\""), std::string::npos) << Line1;
  EXPECT_NE(Line1.find("\\u000a"), std::string::npos) << Line1;
  // A zero trace id is omitted, not printed as zeros.
  EXPECT_EQ(Line2.find("\"trace\""), std::string::npos) << Line2;
  EXPECT_NE(Line2.find("\"event\":\"shed\""), std::string::npos);
}

TEST(ObsEventLog, RateLimitDropsAndCounts) {
  obs::EventLog &L = obs::EventLog::global();
  char Path[] = "/tmp/slingen_obs_storm_XXXXXX";
  int Fd = mkstemp(Path);
  ASSERT_GE(Fd, 0);
  close(Fd);
  std::string Err;
  ASSERT_TRUE(L.open(Path, Err)) << Err;
  int64_t DroppedBefore = L.dropped();
  // A storm well past the burst allowance: the file must stay bounded and
  // the overflow must be counted, not silently vanish.
  constexpr int Storm = obs::EventLog::Burst + 300;
  for (int I = 0; I < Storm; ++I)
    L.log(obs::EventLog::Level::Error, 0, "storm");
  L.close();
  int64_t NewDrops = L.dropped() - DroppedBefore;
  EXPECT_GT(NewDrops, 0);

  std::ifstream In(Path);
  int Lines = 0;
  std::string Line;
  while (std::getline(In, Line))
    ++Lines;
  unlink(Path);
  // Admitted + dropped accounts for every event (the bucket may refill a
  // few tokens mid-storm, so bound rather than pin the split).
  EXPECT_EQ(Lines + NewDrops, Storm);
  EXPECT_LE(Lines, obs::EventLog::Burst + 50);
}
