//===- tests/obs_test.cpp - metrics registry and tracer tests -------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The observability layer: histogram bucket boundaries and percentile
// math, concurrent recording, registry reference stability and text
// rendering, and the span tracer's ring/export behavior. The tracer and
// registry are process-global, so tracer tests save and restore the
// enabled flag and clear the ring when done.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include "gtest/gtest.h"

#include <thread>
#include <vector>

using namespace slingen;
using obs::Histogram;

//===----------------------------------------------------------------------===//
// Histogram buckets
//===----------------------------------------------------------------------===//

TEST(ObsHistogram, BucketBoundaries) {
  // Bucket I covers [2^I, 2^(I+1)); bucket 0 additionally absorbs [0, 2).
  EXPECT_EQ(Histogram::bucketOf(0), 0);
  EXPECT_EQ(Histogram::bucketOf(1), 0);
  EXPECT_EQ(Histogram::bucketOf(2), 1);
  EXPECT_EQ(Histogram::bucketOf(3), 1);
  EXPECT_EQ(Histogram::bucketOf(4), 2);
  EXPECT_EQ(Histogram::bucketOf(7), 2);
  EXPECT_EQ(Histogram::bucketOf(8), 3);
  EXPECT_EQ(Histogram::bucketOf(1023), 9);
  EXPECT_EQ(Histogram::bucketOf(1024), 10);
  EXPECT_EQ(Histogram::bucketOf(1025), 10);
  EXPECT_EQ(Histogram::bucketOf(int64_t(1) << 40), 40);
  // The largest representable duration sits in bucket 62 ([2^62, 2^63));
  // bucket 63 exists only so the index can never run off the array.
  EXPECT_EQ(Histogram::bucketOf(INT64_MAX), 62);
  EXPECT_LT(Histogram::bucketOf(INT64_MAX), Histogram::NumBuckets);
}

TEST(ObsHistogram, EmptySnapshot) {
  Histogram H;
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0);
  EXPECT_EQ(S.Sum, 0);
  EXPECT_EQ(S.Min, 0);
  EXPECT_EQ(S.Max, 0);
  EXPECT_EQ(S.percentile(50), 0.0);
  EXPECT_EQ(S.mean(), 0.0);
}

TEST(ObsHistogram, RecordBasics) {
  Histogram H;
  H.record(1);
  H.record(100);
  H.record(10000);
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 3);
  EXPECT_EQ(S.Sum, 10101);
  EXPECT_EQ(S.Min, 1);
  EXPECT_EQ(S.Max, 10000);
  EXPECT_EQ(S.Buckets[Histogram::bucketOf(1)], 1);
  EXPECT_EQ(S.Buckets[Histogram::bucketOf(100)], 1);
  EXPECT_EQ(S.Buckets[Histogram::bucketOf(10000)], 1);
}

TEST(ObsHistogram, PercentileSingleValue) {
  // All mass at one value: every percentile clamps to that exact value
  // (the interpolation cannot wander outside [Min, Max]).
  Histogram H;
  for (int I = 0; I < 1000; ++I)
    H.record(100);
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.p50(), 100.0);
  EXPECT_EQ(S.p99(), 100.0);
  EXPECT_EQ(S.percentile(0), 100.0);
  EXPECT_EQ(S.percentile(100), 100.0);
}

TEST(ObsHistogram, PercentileBimodal) {
  // 90 fast samples (10us) and 10 slow ones (10000us): p50 must sit in
  // the fast bucket, p99 in the slow one -- the tail-detection property
  // the serving stack relies on.
  Histogram H;
  for (int I = 0; I < 90; ++I)
    H.record(10);
  for (int I = 0; I < 10; ++I)
    H.record(10000);
  Histogram::Snapshot S = H.snapshot();
  EXPECT_GE(S.p50(), 10.0); // clamped to Min
  EXPECT_LT(S.p50(), 16.0); // inside [8, 16), bucket of 10
  EXPECT_GE(S.p99(), 8192.0);    // inside the slow bucket [8192, 16384)
  EXPECT_LE(S.p99(), 10000.0);   // clamped to Max
  EXPECT_DOUBLE_EQ(S.mean(), (90.0 * 10 + 10.0 * 10000) / 100);
}

TEST(ObsHistogram, ConcurrentRecording) {
  Histogram H;
  constexpr int NumThreads = 8, PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&H] {
      for (int I = 0; I < PerThread; ++I)
        H.record((I % 1024) + 1);
    });
  for (std::thread &T : Threads)
    T.join();
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, int64_t(NumThreads) * PerThread);
  int64_t PerThreadSum = 0;
  for (int I = 0; I < PerThread; ++I)
    PerThreadSum += (I % 1024) + 1;
  EXPECT_EQ(S.Sum, NumThreads * PerThreadSum);
  EXPECT_EQ(S.Min, 1);
  EXPECT_EQ(S.Max, 1024);
  int64_t BucketTotal = 0;
  for (int64_t B : S.Buckets)
    BucketTotal += B;
  EXPECT_EQ(BucketTotal, S.Count);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(ObsRegistry, StableReferences) {
  obs::Registry &R = obs::Registry::global();
  obs::Counter &C1 = R.counter("obstest.stable.counter");
  obs::Counter &C2 = R.counter("obstest.stable.counter");
  EXPECT_EQ(&C1, &C2);
  obs::Histogram &H1 = R.histogram("obstest.stable.hist");
  obs::Histogram &H2 = R.histogram("obstest.stable.hist");
  EXPECT_EQ(&H1, &H2);
  // Same name, different kind namespaces: counters and gauges are
  // separate maps, so this is two metrics, not one.
  obs::Gauge &G = R.gauge("obstest.stable.gauge");
  G.set(42);
  EXPECT_EQ(G.value(), 42);
  G.add(-2);
  EXPECT_EQ(G.value(), 40);
}

TEST(ObsRegistry, RenderText) {
  obs::Registry &R = obs::Registry::global();
  R.counter("obstest.render.counter").add(7);
  R.gauge("obstest.render.gauge").set(-3);
  obs::Histogram &H = R.histogram("obstest.render.hist");
  H.record(100);
  H.record(200);
  std::string Text = R.renderText();
  EXPECT_NE(Text.find("obstest.render.counter=7\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.gauge=-3\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.count=2\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.sum-us=300\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.min-us=100\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.max-us=200\n"), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.p50-us="), std::string::npos);
  EXPECT_NE(Text.find("obstest.render.hist.p99-us="), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

namespace {

/// Save/restore the global tracer around a test (it is process state).
class TracerGuard {
public:
  TracerGuard() : WasOn(obs::Tracer::global().enabled()) {
    obs::Tracer::global().clear();
  }
  ~TracerGuard() {
    obs::Tracer::global().setEnabled(WasOn);
    obs::Tracer::global().clear();
  }

private:
  bool WasOn;
};

} // namespace

TEST(ObsTracer, DisabledRecordsNothing) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(false);
  {
    obs::ScopedSpan Span("obstest-disabled", "test");
  }
  EXPECT_EQ(T.size(), 0u);
}

TEST(ObsTracer, ScopedSpanRecordsWhenEnabled) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(true);
  obs::Histogram H;
  {
    obs::ScopedSpan Span("obstest-span", "test", &H);
  }
  EXPECT_EQ(T.size(), 1u);
  EXPECT_EQ(H.snapshot().Count, 1);
  // finish() is idempotent: an early finish plus destruction is one span,
  // one histogram sample.
  obs::ScopedSpan Early("obstest-early", "test", &H);
  Early.finish();
  Early.finish();
  EXPECT_EQ(T.size(), 2u);
  EXPECT_EQ(H.snapshot().Count, 2);
}

TEST(ObsTracer, HistogramRecordsEvenWhenDisabled) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(false);
  obs::Histogram H;
  {
    obs::ScopedSpan Span("obstest-hist-only", "test", &H);
  }
  EXPECT_EQ(T.size(), 0u);    // no span...
  EXPECT_EQ(H.snapshot().Count, 1); // ...but the histogram still sees it
}

TEST(ObsTracer, ChromeExportShape) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(true);
  T.record({"obstest-export", "test", 1000, 250, 3});
  std::string J = T.exportChromeTrace();
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"obstest-export\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(J.find("\"ts\": 1000"), std::string::npos);
  EXPECT_NE(J.find("\"dur\": 250"), std::string::npos);
  // Quotes and backslashes in names must come out escaped, or the export
  // is not JSON.
  T.record({"with\"quote\\", "test", 0, 1, 0});
  J = T.exportChromeTrace();
  EXPECT_NE(J.find("with\\\"quote\\\\"), std::string::npos);
}

TEST(ObsTracer, RingDropsOldest) {
  TracerGuard Guard;
  obs::Tracer &T = obs::Tracer::global();
  T.setEnabled(true);
  constexpr int Recorded = 70000; // > the ring capacity (1 << 16)
  for (int I = 0; I < Recorded; ++I)
    T.record({"obstest-ring", "test", I, 1, 0});
  EXPECT_LT(T.size(), static_cast<size_t>(Recorded));
  EXPECT_EQ(T.dropped(), Recorded - static_cast<int64_t>(T.size()));
  T.clear();
  EXPECT_EQ(T.size(), 0u);
}
