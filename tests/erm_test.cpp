//===- tests/erm_test.cpp - bottleneck analysis tests ----------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Checks the ERM-style model on hand-built C-IR with known instruction
// mixes, and the Table 4 qualitative shape on generated kernels: small
// factorizations are division-bound, large ones become memory-bound.
//===----------------------------------------------------------------------===//

#include "erm/Erm.h"
#include "la/Lower.h"
#include "la/Programs.h"
#include "slingen/SLinGen.h"

#include <gtest/gtest.h>

using namespace slingen;

namespace {

cir::Function makeFunc(const std::function<void(cir::FuncBuilder &)> &Fill) {
  cir::FuncBuilder B("probe", 4);
  Fill(B);
  return B.take({});
}

TEST(ErmModel, CountsScalarMix) {
  cir::Function F = makeFunc([](cir::FuncBuilder &B) {
    int A = B.sconst(1.0), C = B.sconst(2.0);
    int D = B.sbin(cir::Op::SAdd, A, C);
    int E = B.sbin(cir::Op::SMul, D, A);
    int Q = B.sbin(cir::Op::SDiv, E, D);
    B.ssqrt(Q);
  });
  erm::Analysis A = erm::analyze(F);
  EXPECT_EQ(A.Flops, 4);    // add, mul, div, sqrt
  EXPECT_EQ(A.DivSqrt, 2);  // div + sqrt
  EXPECT_EQ(A.Bottleneck, "divs/sqrt");
  EXPECT_NEAR(A.DivCycles, 88.0, 1e-9);
}

TEST(ErmModel, LoopsMultiplyCounts) {
  cir::Function F = makeFunc([](cir::FuncBuilder &B) {
    int V = B.beginLoop(0, 16, 1);
    (void)V;
    int X = B.vconst(1.0);
    B.vbin(cir::Op::VAdd, X, X);
    B.endLoop();
  });
  erm::Analysis A = erm::analyze(F);
  EXPECT_EQ(A.Flops, 16 * 4);
}

TEST(ErmModel, BlendVsShuffleClassification) {
  // Per-lane selection = blend; lane movement = shuffle.
  cir::Function F = makeFunc([](cir::FuncBuilder &B) {
    int X = B.vconst(1.0), Y = B.vconst(2.0);
    B.vshuffle(X, Y, {0, 5, 2, 7});  // lanes stay: blend
    B.vshuffle(X, Y, {1, 0, 3, 2});  // lanes move: shuffle
    B.vshuffle(X, -1, {-1, 1, 2, 3}); // zeroing blend
  });
  erm::Analysis A = erm::analyze(F);
  EXPECT_EQ(A.Blends, 2);
  EXPECT_EQ(A.Shuffles, 1);
}

TEST(ErmModel, LoadBoundKernel) {
  cir::Function F = makeFunc([](cir::FuncBuilder &B) {
    int V = B.beginLoop(0, 1024, 1);
    Operand Dummy("buf", 1024, 8);
    // Many loads, trivial compute.
    for (int I = 0; I < 8; ++I)
      B.vload(B.addr(&Dummy, I, {{V, 8}}), 4);
    B.endLoop();
  });
  // Note: Dummy's address escapes only within analyze (no execution).
  erm::Analysis A = erm::analyze(F);
  EXPECT_EQ(A.Bottleneck, "L1 loads");
}

TEST(ErmModel, CriticalPathChainsDivisions) {
  // Three dependent divisions: chain = 3 * DivSqrtLatency (22 each).
  cir::Function F = makeFunc([](cir::FuncBuilder &B) {
    int A = B.sconst(8.0), C = B.sconst(2.0);
    int D1 = B.sbin(cir::Op::SDiv, A, C);
    int D2 = B.sbin(cir::Op::SDiv, D1, C);
    B.sbin(cir::Op::SDiv, D2, C);
  });
  erm::Analysis A = erm::analyze(F);
  EXPECT_NEAR(A.CriticalPathCycles, 66.0, 1e-9);
}

TEST(ErmModel, CriticalPathSeesMemoryDependences) {
  // Store then reload at a constant address: the chain flows through L1.
  static Operand Buf("buf", 4, 1);
  cir::Function F = makeFunc([](cir::FuncBuilder &B) {
    int A = B.sconst(1.0), C = B.sconst(3.0);
    int D = B.sbin(cir::Op::SDiv, A, C); // 22
    B.sstore(B.addr(&Buf, 0), D);
    int L = B.sload(B.addr(&Buf, 0));    // +4
    B.sbin(cir::Op::SMul, L, L);         // +5
  });
  erm::Analysis A = erm::analyze(F);
  EXPECT_NEAR(A.CriticalPathCycles, 31.0, 1e-9);
}

TEST(ErmModel, IndependentWorkDoesNotChain) {
  // 16 independent divisions: path = one latency, issue bound = 16 * 44.
  cir::Function F = makeFunc([](cir::FuncBuilder &B) {
    int C = B.sconst(2.0);
    for (int I = 0; I < 16; ++I) {
      int A = B.sconst(1.0 + I);
      B.sbin(cir::Op::SDiv, A, C);
    }
  });
  erm::Analysis A = erm::analyze(F);
  EXPECT_NEAR(A.CriticalPathCycles, 22.0, 1e-9);
  EXPECT_NEAR(A.DivCycles, 16 * 44.0, 1e-9);
}

//===----------------------------------------------------------------------===//
// Table 4 shape on generated kernels.
//===----------------------------------------------------------------------===//

erm::Analysis analyzeHlac(const std::string &Src) {
  std::string Err;
  auto P = la::compileLa(Src, Err);
  EXPECT_TRUE(P) << Err;
  GenOptions O;
  O.Isa = &avxIsa();
  Generator G(std::move(*P), O);
  EXPECT_TRUE(G.isValid()) << G.error();
  auto R = G.best(4);
  EXPECT_TRUE(R);
  return erm::analyze(R->Func);
}

TEST(Table4Shape, SmallPotrfIsDivisionBound) {
  erm::Analysis A = analyzeHlac(la::potrfSource(4));
  EXPECT_EQ(A.Bottleneck, "divs/sqrt");
}

TEST(Table4Shape, SmallTrsylIsDivisionBound) {
  erm::Analysis A = analyzeHlac(la::trsylSource(4));
  EXPECT_EQ(A.Bottleneck, "divs/sqrt");
}

TEST(Table4Shape, LargePotrfIsNotDivisionBound) {
  // The division fraction decays like 1/n^2 for potrf: by n = 76 the
  // bottleneck moves to the memory hierarchy (paper Table 4).
  erm::Analysis A = analyzeHlac(la::potrfSource(76));
  EXPECT_NE(A.Bottleneck, "divs/sqrt");
}

TEST(Table4Shape, IssueRateDecreasesWithSize) {
  erm::Analysis Small = analyzeHlac(la::potrfSource(4));
  erm::Analysis Large = analyzeHlac(la::potrfSource(40));
  EXPECT_GT(Small.ShuffleBlendIssueRate, Large.ShuffleBlendIssueRate);
}

TEST(Table4Shape, PerfLimitsBracketed) {
  for (int N : {4, 16, 40}) {
    erm::Analysis A = analyzeHlac(la::potrfSource(N));
    EXPECT_GT(A.PerfLimitShuffles, 0.0);
    EXPECT_LE(A.PerfLimitShuffles, 8.0);
    EXPECT_LE(A.PerfLimitShuffles, A.PerfLimitBlends + 1e-9);
  }
}

} // namespace
