//===- tests/cir_test.cpp - C-IR, interpreter, and pass tests --------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cir/CEmitter.h"
#include "cir/CIR.h"
#include "cir/Interp.h"
#include "cir/Verify.h"
#include "cir/Passes.h"
#include "expr/Program.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>

using namespace slingen;
using namespace slingen::cir;

namespace {

/// Oracle hook: every function this suite executes must pass the static
/// verifier first (cir/Verify.h), so the whole hand-built and pass-produced
/// IR corpus doubles as the verifier's clean set. All interpret() calls
/// below route through here.
void interpretVerified(const Function &F,
                       const std::map<const Operand *, double *> &Buffers) {
  std::vector<VerifyError> Errors = verify(F);
  for (const VerifyError &E : Errors)
    ADD_FAILURE() << "verifier rejected interpreted IR: " << E.str();
  interpret(F, Buffers);
}

void interpretVerified(const Function &F,
                       const std::map<const Operand *, double *> &Buffers,
                       int Active) {
  std::vector<VerifyError> Errors = verify(F);
  for (const VerifyError &E : Errors)
    ADD_FAILURE() << "verifier rejected interpreted IR: " << E.str();
  interpret(F, Buffers, Active);
}

/// Convenience: an environment with one 4x4 input A and one 4x4 output C.
struct Kernel2 {
  Program P;
  Operand *A, *C;
  std::vector<double> ABuf, CBuf;

  Kernel2() {
    A = P.addOperand("A", 4, 4);
    C = P.addOperand("C", 4, 4);
    C->IO = IOKind::Out;
    ABuf.resize(16);
    CBuf.assign(16, 0.0);
    for (int I = 0; I < 16; ++I)
      ABuf[I] = I + 1;
  }

  std::map<const Operand *, double *> buffers() {
    return {{A, ABuf.data()}, {C, CBuf.data()}};
  }
};

TEST(CirInterp, ScalarLoop) {
  // C[i] = A[i] * 2 + 1 for i in [0,16).
  Kernel2 K;
  FuncBuilder B("k", 1);
  int Two = B.sconst(2.0);
  int One = B.sconst(1.0);
  int IV = B.beginLoop(0, 16, 1);
  int V = B.sload(B.addr(K.A, 0, {{IV, 1}}));
  int M = B.sbin(Op::SMul, V, Two);
  int R = B.sbin(Op::SAdd, M, One);
  B.sstore(B.addr(K.C, 0, {{IV, 1}}), R);
  B.endLoop();
  Function F = B.take({K.A, K.C});
  interpretVerified(F, K.buffers());
  for (int I = 0; I < 16; ++I)
    EXPECT_DOUBLE_EQ(K.CBuf[I], K.ABuf[I] * 2.0 + 1.0);
}

TEST(CirInterp, VectorOpsAndMaskedTail) {
  // C[0:3) = A[0:3) + A[4:7) using a masked 3-lane AVX-style load/store.
  Kernel2 K;
  FuncBuilder B("k", 4);
  int V1 = B.vload(B.addr(K.A, 0), 3);
  int V2 = B.vload(B.addr(K.A, 4), 3);
  int S = B.vbin(Op::VAdd, V1, V2);
  B.vstore(B.addr(K.C, 0), S, 3);
  Function F = B.take({K.A, K.C});
  interpretVerified(F, K.buffers());
  for (int I = 0; I < 3; ++I)
    EXPECT_DOUBLE_EQ(K.CBuf[I], K.ABuf[I] + K.ABuf[4 + I]);
  EXPECT_DOUBLE_EQ(K.CBuf[3], 0.0); // untouched
}

TEST(CirInterp, StridedColumnAccessAndShuffle) {
  Kernel2 K;
  FuncBuilder B("k", 4);
  // Load column 1 of A (stride 4), reverse it with a shuffle, store to row 0
  // of C.
  int Col = B.vloadStrided(B.addr(K.A, 1), 4, 4);
  int Rev = B.vshuffle(Col, Col, {3, 2, 1, 0});
  B.vstore(B.addr(K.C, 0), Rev, 4);
  Function F = B.take({K.A, K.C});
  interpretVerified(F, K.buffers());
  for (int L = 0; L < 4; ++L)
    EXPECT_DOUBLE_EQ(K.CBuf[L], K.ABuf[(3 - L) * 4 + 1]);
}

TEST(CirInterp, ShuffleZeroAndTwoSource) {
  Kernel2 K;
  FuncBuilder B("k", 4);
  int V1 = B.vload(B.addr(K.A, 0), 4);  // 1 2 3 4
  int V2 = B.vload(B.addr(K.A, 4), 4);  // 5 6 7 8
  int Sh = B.vshuffle(V1, V2, {1, 4, -1, 7}); // 2 5 0 8
  B.vstore(B.addr(K.C, 0), Sh, 4);
  Function F = B.take({K.A, K.C});
  interpretVerified(F, K.buffers());
  EXPECT_DOUBLE_EQ(K.CBuf[0], 2.0);
  EXPECT_DOUBLE_EQ(K.CBuf[1], 5.0);
  EXPECT_DOUBLE_EQ(K.CBuf[2], 0.0);
  EXPECT_DOUBLE_EQ(K.CBuf[3], 8.0);
}

TEST(CirInterp, ReduceExtractBroadcastFma) {
  Kernel2 K;
  FuncBuilder B("k", 4);
  int V1 = B.vload(B.addr(K.A, 0), 4); // 1 2 3 4
  int Red = B.vreduceAdd(V1);          // 10
  B.sstore(B.addr(K.C, 0), Red);
  int E2 = B.vextract(V1, 2); // 3
  B.sstore(B.addr(K.C, 1), E2);
  int Bc = B.vbroadcast(E2);
  int Fma = B.vfma(Bc, V1, V1); // 3*A + A = 4A
  B.vstore(B.addr(K.C, 4), Fma, 4);
  Function F = B.take({K.A, K.C});
  interpretVerified(F, K.buffers());
  EXPECT_DOUBLE_EQ(K.CBuf[0], 10.0);
  EXPECT_DOUBLE_EQ(K.CBuf[1], 3.0);
  for (int L = 0; L < 4; ++L)
    EXPECT_DOUBLE_EQ(K.CBuf[4 + L], 4.0 * K.ABuf[L]);
}

//===----------------------------------------------------------------------===//
// Passes.
//===----------------------------------------------------------------------===//

TEST(CirPasses, UnrollFoldsAddresses) {
  Kernel2 K;
  FuncBuilder B("k", 1);
  int IV = B.beginLoop(0, 4, 1);
  int V = B.sload(B.addr(K.A, 0, {{IV, 4}}));
  B.sstore(B.addr(K.C, 0, {{IV, 4}}), V);
  B.endLoop();
  Function F = B.take({K.A, K.C});
  unrollLoops(F, 8);
  EXPECT_EQ(countInsts(F), 8);
  // No loops remain.
  for (const Node &N : F.Body)
    EXPECT_TRUE(std::holds_alternative<Inst>(N));
  interpretVerified(F, K.buffers());
  for (int I = 0; I < 4; ++I)
    EXPECT_DOUBLE_EQ(K.CBuf[I * 4], K.ABuf[I * 4]);
}

TEST(CirPasses, UnrollKeepsLargeLoops) {
  Kernel2 K;
  FuncBuilder B("k", 1);
  int IV = B.beginLoop(0, 16, 1);
  int V = B.sload(B.addr(K.A, 0, {{IV, 1}}));
  B.sstore(B.addr(K.C, 0, {{IV, 1}}), V);
  B.endLoop();
  Function F = B.take({K.A, K.C});
  unrollLoops(F, 8);
  ASSERT_EQ(F.Body.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<Loop>(F.Body[0]));
}

TEST(CirPasses, CseDeduplicates) {
  Kernel2 K;
  FuncBuilder B("k", 1);
  int V1 = B.sload(B.addr(K.A, 0));
  int V2 = B.sload(B.addr(K.A, 1));
  int M1 = B.sbin(Op::SMul, V1, V2);
  int M2 = B.sbin(Op::SMul, V2, V1); // commutative duplicate
  int S = B.sbin(Op::SAdd, M1, M2);
  B.sstore(B.addr(K.C, 0), S);
  Function F = B.take({K.A, K.C});
  int Before = countInsts(F);
  cse(F);
  dce(F);
  EXPECT_LT(countInsts(F), Before);
  interpretVerified(F, K.buffers());
  EXPECT_DOUBLE_EQ(K.CBuf[0], 2.0 * K.ABuf[0] * K.ABuf[1]);
}

TEST(CirPasses, DceRemovesUnusedChains) {
  Kernel2 K;
  FuncBuilder B("k", 1);
  int V1 = B.sload(B.addr(K.A, 0));
  int Dead1 = B.sbin(Op::SMul, V1, V1);
  B.sbin(Op::SAdd, Dead1, V1); // dead
  B.sstore(B.addr(K.C, 0), V1);
  Function F = B.take({K.A, K.C});
  dce(F);
  EXPECT_EQ(countInsts(F), 2);
}

TEST(CirPasses, StoreToLoadForwardingBecomesShuffle) {
  // The Fig. 11/12 scenario: two masked stores followed by a load that
  // gathers lanes from both stored vectors; after the pass the reload is a
  // shuffle and no load instruction remains.
  Kernel2 K;
  FuncBuilder B("k", 4);
  int V1 = B.vload(B.addr(K.A, 0), 4);
  int V2 = B.vload(B.addr(K.A, 4), 4);
  B.vstore(B.addr(K.C, 0), V1, 3);  // C[0..2] = A[0..2]
  B.vstore(B.addr(K.C, 3), V2, 2);  // C[3..4] = A[4..5]
  int Re = B.vload(B.addr(K.C, 1), 4); // lanes from both stores
  int Double_ = B.vbin(Op::VAdd, Re, Re);
  B.vstore(B.addr(K.C, 8), Double_, 4);
  Function F = B.take({K.A, K.C});
  loadStoreOpt(F);
  dce(F);
  int Loads = 0, Shuffles = 0;
  for (const Node &N : F.Body) {
    const Inst &I = std::get<Inst>(N);
    Loads += I.K == Op::VLoad && I.Address.Buf == K.C;
    Shuffles += I.K == Op::VShuffle;
  }
  EXPECT_EQ(Loads, 0) << F.str();
  EXPECT_EQ(Shuffles, 1) << F.str();
  interpretVerified(F, K.buffers());
  EXPECT_DOUBLE_EQ(K.CBuf[8], 2.0 * K.ABuf[1]);
  EXPECT_DOUBLE_EQ(K.CBuf[9], 2.0 * K.ABuf[2]);
  EXPECT_DOUBLE_EQ(K.CBuf[10], 2.0 * K.ABuf[4]);
  EXPECT_DOUBLE_EQ(K.CBuf[11], 2.0 * K.ABuf[5]);
}

TEST(CirPasses, ScalarForwardingAndExtract) {
  Kernel2 K;
  FuncBuilder B("k", 4);
  int V1 = B.vload(B.addr(K.A, 0), 4);
  B.vstore(B.addr(K.C, 0), V1, 4);
  int S = B.sload(B.addr(K.C, 2)); // becomes extract lane 2 of V1
  int D = B.sbin(Op::SAdd, S, S);
  B.sstore(B.addr(K.C, 4), D);
  Function F = B.take({K.A, K.C});
  loadStoreOpt(F);
  dce(F);
  bool SawExtract = false;
  for (const Node &N : F.Body) {
    const Inst &I = std::get<Inst>(N);
    EXPECT_NE(I.K, Op::SLoad);
    SawExtract |= I.K == Op::VExtract;
  }
  EXPECT_TRUE(SawExtract);
  interpretVerified(F, K.buffers());
  EXPECT_DOUBLE_EQ(K.CBuf[4], 2.0 * K.ABuf[2]);
}

TEST(CirPasses, DeadStoreElimination) {
  Kernel2 K;
  FuncBuilder B("k", 1);
  int V1 = B.sload(B.addr(K.A, 0));
  int V2 = B.sload(B.addr(K.A, 1));
  B.sstore(B.addr(K.C, 0), V1); // dead: overwritten below, never read
  B.sstore(B.addr(K.C, 0), V2);
  Function F = B.take({K.A, K.C});
  loadStoreOpt(F);
  dce(F);
  int Stores = 0;
  for (const Node &N : F.Body)
    Stores += isStore(std::get<Inst>(N).K);
  EXPECT_EQ(Stores, 1);
  interpretVerified(F, K.buffers());
  EXPECT_DOUBLE_EQ(K.CBuf[0], K.ABuf[1]);
}

TEST(CirPasses, RedundantLoadReuse) {
  Kernel2 K;
  FuncBuilder B("k", 4);
  int V1 = B.vload(B.addr(K.A, 0), 4);
  int V2 = B.vload(B.addr(K.A, 0), 4); // redundant
  int S = B.vbin(Op::VAdd, V1, V2);
  B.vstore(B.addr(K.C, 0), S, 4);
  Function F = B.take({K.A, K.C});
  loadStoreOpt(F);
  dce(F);
  int Loads = 0;
  for (const Node &N : F.Body)
    Loads += std::get<Inst>(N).K == Op::VLoad;
  EXPECT_EQ(Loads, 1);
  interpretVerified(F, K.buffers());
  EXPECT_DOUBLE_EQ(K.CBuf[0], 2.0 * K.ABuf[0]);
}

TEST(CirPasses, OptimizePreservesSemantics) {
  // A mixed kernel exercised before/after the full pipeline.
  for (int Nu : {1, 4}) {
    Kernel2 K;
    FuncBuilder B("k", Nu);
    if (Nu == 1) {
      int IV = B.beginLoop(0, 4, 1);
      int V = B.sload(B.addr(K.A, 0, {{IV, 4}}));
      int W = B.sload(B.addr(K.A, 0, {{IV, 4}}));
      int M = B.sbin(Op::SMul, V, W);
      B.sstore(B.addr(K.C, 0, {{IV, 4}}), M);
      B.endLoop();
    } else {
      int V = B.vload(B.addr(K.A, 0), 4);
      B.vstore(B.addr(K.C, 0), V, 4);
      int R = B.vload(B.addr(K.C, 0), 4);
      int M = B.vbin(Op::VMul, R, R);
      B.vstore(B.addr(K.C, 4), M, 4);
    }
    Function F = B.take({K.A, K.C});
    // Reference run on separate buffers bound to the same operands.
    std::vector<double> RefA = K.ABuf, RefC = K.CBuf;
    std::map<const Operand *, double *> RefBufs = {{K.A, RefA.data()},
                                                   {K.C, RefC.data()}};
    interpretVerified(F, RefBufs);
    optimize(F);
    interpretVerified(F, K.buffers());
    EXPECT_EQ(RefC, K.CBuf) << "nu=" << Nu;
  }
}

//===----------------------------------------------------------------------===//
// C emitter (textual checks; compile-and-run is covered by the JIT tests).
//===----------------------------------------------------------------------===//

TEST(CEmitter, ScalarKernelText) {
  Kernel2 K;
  FuncBuilder B("saxpyish", 1);
  int IV = B.beginLoop(0, 16, 1);
  int V = B.sload(B.addr(K.A, 0, {{IV, 1}}));
  int M = B.sbin(Op::SMul, V, V);
  B.sstore(B.addr(K.C, 0, {{IV, 1}}), M);
  B.endLoop();
  Function F = B.take({K.A, K.C});
  F.ParamWritable = {false, true};
  std::string C = emitTranslationUnit(F);
  EXPECT_NE(C.find("void saxpyish(const double *__restrict A, "
                   "double *__restrict C)"),
            std::string::npos)
      << C;
  EXPECT_NE(C.find("for (int i0 = 0; i0 < 16; i0 += 1)"), std::string::npos);
  EXPECT_EQ(C.find("immintrin"), std::string::npos);
}

TEST(CEmitter, VectorKernelUsesIntrinsics) {
  Kernel2 K;
  FuncBuilder B("vk", 4);
  int V1 = B.vload(B.addr(K.A, 0), 4);
  int V2 = B.vload(B.addr(K.A, 4), 3); // masked
  int S = B.vbin(Op::VAdd, V1, V2);
  int Sh = B.vshuffle(S, S, {2, 3, 0, 1});
  int Bl = B.vshuffle(V1, V2, {0, 5, 2, 7});
  int Fma = B.vfma(S, Sh, Bl);
  B.vstore(B.addr(K.C, 0), Fma, 4);
  B.vstore(B.addr(K.C, 8), S, 2);
  Function F = B.take({K.A, K.C});
  std::string C = emitTranslationUnit(F);
  EXPECT_NE(C.find("_mm256_loadu_pd"), std::string::npos) << C;
  EXPECT_NE(C.find("_mm256_maskload_pd"), std::string::npos);
  EXPECT_NE(C.find("_mm256_maskstore_pd"), std::string::npos);
  EXPECT_NE(C.find("_mm256_permute4x64_pd"), std::string::npos);
  EXPECT_NE(C.find("_mm256_blend_pd"), std::string::npos);
  EXPECT_NE(C.find("_mm256_fmadd_pd"), std::string::npos);
  EXPECT_NE(C.find("mk3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// FMA contraction and runtime-masked lane-strided ops.
//===----------------------------------------------------------------------===//

/// Opcode histogram over the whole function body.
std::map<Op, int> opCounts(const Function &F) {
  std::map<Op, int> C;
  std::function<void(const std::vector<Node> &)> Walk =
      [&](const std::vector<Node> &Body) {
        for (const Node &N : Body) {
          if (const auto *I = std::get_if<Inst>(&N))
            ++C[I->K];
          else
            Walk(std::get<Loop>(N).Body);
        }
      };
  Walk(F.Body);
  return C;
}

TEST(CirPasses, ContractFmaFusesMulAddAndMulSub) {
  Kernel2 K;
  FuncBuilder B("k", 4);
  int V1 = B.vload(B.addr(K.A, 0), 4);
  int V2 = B.vload(B.addr(K.A, 4), 4);
  int V3 = B.vload(B.addr(K.A, 8), 4);
  int M1 = B.vbin(Op::VMul, V1, V2);
  int S1 = B.vbin(Op::VAdd, M1, V3); // -> VFma(V1, V2, V3)
  B.vstore(B.addr(K.C, 0), S1, 4);
  int M2 = B.vbin(Op::VMul, V1, V3);
  int S2 = B.vbin(Op::VSub, V2, M2); // c - a*b -> VFnma(V1, V3, V2)
  B.vstore(B.addr(K.C, 4), S2, 4);
  Function F = B.take({K.A, K.C});
  contractFma(F);
  std::map<Op, int> C = opCounts(F);
  EXPECT_EQ(C[Op::VMul], 0) << F.str();
  EXPECT_EQ(C[Op::VAdd], 0) << F.str();
  EXPECT_EQ(C[Op::VSub], 0) << F.str();
  EXPECT_EQ(C[Op::VFma], 1) << F.str();
  EXPECT_EQ(C[Op::VFnma], 1) << F.str();
  interpretVerified(F, K.buffers());
  for (int L = 0; L < 4; ++L) {
    EXPECT_DOUBLE_EQ(K.CBuf[L],
                     std::fma(K.ABuf[L], K.ABuf[4 + L], K.ABuf[8 + L]));
    EXPECT_DOUBLE_EQ(K.CBuf[4 + L],
                     std::fma(-K.ABuf[L], K.ABuf[8 + L], K.ABuf[4 + L]));
  }
}

TEST(CirPasses, ContractFmaLeavesMultiUseMulAlone) {
  // The product feeds both an add and a store: fusing would change the
  // stored value's rounding, so the mul must survive and the add must not
  // be contracted.
  Kernel2 K;
  FuncBuilder B("k", 4);
  int V1 = B.vload(B.addr(K.A, 0), 4);
  int V2 = B.vload(B.addr(K.A, 4), 4);
  int M = B.vbin(Op::VMul, V1, V2);
  int S = B.vbin(Op::VAdd, M, V1);
  B.vstore(B.addr(K.C, 0), M, 4);
  B.vstore(B.addr(K.C, 4), S, 4);
  Function F = B.take({K.A, K.C});
  contractFma(F);
  std::map<Op, int> C = opCounts(F);
  EXPECT_EQ(C[Op::VMul], 1) << F.str();
  EXPECT_EQ(C[Op::VAdd], 1) << F.str();
  EXPECT_EQ(C[Op::VFma], 0) << F.str();
}

TEST(CirInterp, MaskedStridedOpsHonorActiveLanes) {
  // Lane-strided masked load/store against a 4-element-stride column;
  // active_ = 2 must read/write lanes {0, 1} only and zero dead load lanes.
  Kernel2 K;
  FuncBuilder B("k", 4);
  int V = B.vloadStridedMasked(B.addr(K.A, 0), 4, 4);
  int D = B.vbin(Op::VAdd, V, V);
  B.vstoreStridedMasked(B.addr(K.C, 0), D, 4, 4);
  Function F = B.take({K.A, K.C});
  F.HasTailMask = true;
  interpretVerified(F, K.buffers(), /*Active=*/2);
  EXPECT_DOUBLE_EQ(K.CBuf[0], 2.0 * K.ABuf[0]);
  EXPECT_DOUBLE_EQ(K.CBuf[4], 2.0 * K.ABuf[4]);
  EXPECT_DOUBLE_EQ(K.CBuf[8], 0.0) << "inactive lane stored";
  EXPECT_DOUBLE_EQ(K.CBuf[12], 0.0) << "inactive lane stored";
}

TEST(CEmitter, MaskedOpsTakeActiveParamPerIsa) {
  // Each width lowers the runtime tail mask differently: AVX-512 k-masks,
  // AVX2 compare-derived integer masks, SSE2 lane-split scalar moves. All
  // gain the trailing `int active_` parameter.
  for (int Nu : {2, 4, 8}) {
    Kernel2 K;
    FuncBuilder B("mk", Nu);
    int V = B.vloadStridedMasked(B.addr(K.A, 0), 4, Nu);
    B.vstoreStridedMasked(B.addr(K.C, 0), V, 4, Nu);
    Function F = B.take({K.A, K.C});
    F.HasTailMask = true;
    std::string C = emitTranslationUnit(F);
    EXPECT_NE(C.find("int active_"), std::string::npos) << C;
    if (Nu == 8) {
      EXPECT_NE(C.find("kact_"), std::string::npos) << C;
      EXPECT_NE(C.find("_mm512_mask_i64gather_pd"), std::string::npos) << C;
      EXPECT_NE(C.find("_mm512_mask_i64scatter_pd"), std::string::npos) << C;
    } else if (Nu == 4) {
      EXPECT_NE(C.find("mact_"), std::string::npos) << C;
      EXPECT_NE(C.find("_mm256_mask_i64gather_pd"), std::string::npos) << C;
    } else {
      EXPECT_NE(C.find("active_ > 1"), std::string::npos) << C;
    }
  }
}

} // namespace
