//===- slingen/client.h - the public SLinGen client API -------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one front door to the kernel-serving system. Everything a program
/// needs to obtain and run generated linear-algebra kernels lives behind
/// three types -- no internal header required, no knowledge of whether the
/// kernel is JIT-compiled in-process or shipped from a daemon:
///
///   sl::Session  a connection to a kernel source, resolved from one
///                address string (grammar below). Owns a pluggable backend:
///                an in-process KernelService (`local:`), a remote sld
///                daemon over a socket (`unix:`/`tcp:`), or a fallback pair
///                that prefers the daemon and degrades to local on
///                transport failures (`auto:`).
///   sl::RequestBuilder  a fluent, validated description of one kernel
///                request: LA source, codegen options, the batched bit and
///                its strategy/threads knobs, measured tuning.
///   sl::Kernel   the served artifact: typed call()/callBatch() entry
///                points plus full provenance (cache key, emitted C,
///                choice vector, tuning data, compiled object bytes). A
///                Kernel behaves identically whether its shared object was
///                compiled locally or received over the wire.
///
/// Errors are values, not `bool + std::string&` out-params: every
/// operation returns an sl::Status or sl::Result<T> carrying one stable
/// sl::Code plus a message. The codes round-trip through the sld wire
/// protocol, so a daemon-side parse error surfaces as Code::ParseError on
/// the client exactly as a local one would.
///
/// Address grammar (Session::open):
///
///   "local:"            in-process service, memory cache only
///   "local:<dir>"       in-process service with a disk cache at <dir>
///   "unix:<path>"       sld daemon on a Unix-domain socket
///   "tcp:<host>:<port>" sld daemon on loopback TCP
///   "<path with '/'>"   shorthand for unix:<path>
///   "<host>:<port>"     shorthand for tcp:<host>:<port>
///   "auto:<remote>"     try the daemon at <remote>; on connect/transport
///                       failure serve from a lazily created local service
///                       (daemon errors about the request itself do NOT
///                       fall back -- they would only repeat locally)
///
/// Error codes:
///
///   code               meaning
///   ----------------   ----------------------------------------------
///   InvalidRequest     builder misuse or a bad option/strategy value
///   ParseError         the LA source did not parse
///   GenerationFailed   no algorithmic variant could be generated
///   CompileFailed      the generated C did not compile
///   NoCompiler         a callable kernel was needed, none available
///   NotRunnable        the kernel's ISA is wider than this host
///   InvalidKernelIR    the serving side generated IR that failed its
///                      static verifier and refused to compile it (a
///                      generator bug surfaced safely, not a bad request)
///   ConnectFailed      the daemon could not be reached at all
///   TransportError     the connection died mid-request (reconnect failed)
///   ProtocolError      the peer sent frames this client cannot decode
///   RemoteError        daemon-side failure with no finer class
///   Overloaded         the serving side shed the request; retry after
///                      backoff (the session's retry policy already did,
///                      so seeing this means the budget ran out)
///   DeadlineExceeded   the deadlineMs() budget expired; retrying is
///                      futile unless the caller grants more time
///   InternalError      unexpected failure inside the stack
///
/// Retry-safe classes: ConnectFailed, TransportError, and Overloaded are
/// the only codes the session retries on its own (SessionConfig::
/// MaxRetries, exponential backoff with jitter). Everything else is a
/// verdict on the request itself and is returned immediately.
///
/// Minimal use:
///
/// \code
///   auto S = sl::Session::open("auto:/tmp/sld.sock");
///   if (!S) return fail(S.status());
///   auto R = sl::RequestBuilder()
///                .source(laText)
///                .name("potrf8")
///                .isa("avx")
///                .build();
///   auto K = S->get(*R);
///   if (!K) return fail(K.status());
///   double *bufs[2] = {a, x};
///   K->call(bufs);
/// \endcode
///
/// This header is self-contained (standard library only) and is what
/// `cmake --install` exports; link against libslingen.a.
///
//===----------------------------------------------------------------------===//

#ifndef SLINGEN_CLIENT_H
#define SLINGEN_CLIENT_H

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace slingen {
namespace client {

//===----------------------------------------------------------------------===//
// Status and Result
//===----------------------------------------------------------------------===//

/// Stable error classes of the client API (table in the file comment).
enum class Code {
  Ok = 0,
  InvalidRequest,
  ParseError,
  GenerationFailed,
  CompileFailed,
  NoCompiler,
  NotRunnable,
  InvalidKernelIR,
  ConnectFailed,
  TransportError,
  ProtocolError,
  RemoteError,
  Overloaded,
  DeadlineExceeded,
  InternalError,
};

/// Stable kebab-case name of \p C ("parse-error", ...).
const char *codeName(Code C);

/// The outcome of an operation with no payload: Ok, or a Code + message.
class Status {
public:
  Status() = default; ///< Ok
  static Status success() { return Status(); }
  static Status failure(Code C, std::string Message) {
    assert(C != Code::Ok && "failure() needs a non-Ok code");
    Status S;
    S.C = C;
    S.Msg = std::move(Message);
    return S;
  }

  bool ok() const { return C == Code::Ok; }
  explicit operator bool() const { return ok(); }
  Code code() const { return C; }
  const std::string &message() const { return Msg; }
  /// "parse-error: unexpected token ..." (or "ok").
  std::string str() const {
    return ok() ? "ok" : std::string(codeName(C)) + ": " + Msg;
  }

private:
  Code C = Code::Ok;
  std::string Msg;
};

/// A value or a failure Status. Converts implicitly from either, so
/// functions mix `return Status::failure(...)` and `return value` freely.
template <typename T> class Result {
public:
  Result(Status S) : St(std::move(S)) {
    assert(!St.ok() && "a successful Result needs a value");
  }
  Result(T Value) : Val(std::move(Value)) {}

  bool ok() const { return St.ok(); }
  explicit operator bool() const { return ok(); }
  const Status &status() const { return St; }
  Code code() const { return St.code(); }
  const std::string &message() const { return St.message(); }

  T &value() {
    assert(ok() && "value() on a failed Result");
    return *Val;
  }
  const T &value() const {
    assert(ok() && "value() on a failed Result");
    return *Val;
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

private:
  Status St;
  std::optional<T> Val;
};

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

/// One validated kernel request, produced by RequestBuilder::build().
/// Immutable; reusable across sessions and calls.
class Request {
public:
  Request() = default;

  const std::string &source() const { return Source; }
  /// The canonical serialized GenOptions document the request carries
  /// (what a daemon receives verbatim).
  const std::string &optionsText() const { return OptionsText; }
  const std::string &functionName() const { return FuncName; }
  bool batched() const { return Batched; }
  /// "loop"/"vec"/"fused"/"auto"; empty defers to the serving side.
  const std::string &strategy() const { return StrategyName; }
  /// Batched dispatch width: 0 defers to the serving side's policy.
  int threads() const { return Threads; }
  /// Measured-tuning override: -1 defers, 0/1 force.
  int measure() const { return Measure; }
  /// Whether the compiled object bytes should be materialized on the
  /// returned Kernel (Kernel::objectBytes).
  bool wantObject() const { return WantObject; }
  /// Whether the serving side was asked to attach its per-phase timing
  /// breakdown to the returned Kernel (Kernel::timing()).
  bool wantTiming() const { return WantTiming; }
  /// Total time budget for one get() of this request in milliseconds
  /// (0 = none). Covers everything: queueing, generation, compilation,
  /// the wire, and any automatic retries.
  int deadlineMs() const { return DeadlineMs; }

private:
  friend class RequestBuilder;
  std::string Source, OptionsText, FuncName, StrategyName;
  bool Batched = false;
  int Threads = 0;
  int Measure = -1;
  bool WantObject = true;
  bool WantTiming = false;
  int DeadlineMs = 0;
};

/// Fluent request construction. Every setter returns *this; build()
/// validates the whole request at once (unknown ISA names, malformed
/// option values, strategy/threads without batched, ...) and returns
/// either the immutable Request or Code::InvalidRequest.
class RequestBuilder {
public:
  RequestBuilder();

  /// The LA program text. Exactly one of source()/sourceFile() is
  /// required.
  RequestBuilder &source(std::string LaText);
  /// Reads the LA program from \p Path at build() time.
  RequestBuilder &sourceFile(std::string Path);
  /// Generated function name (GenOptions "func").
  RequestBuilder &name(std::string FuncName);
  /// Target ISA: scalar | sse2 | avx | avx512 (GenOptions "isa").
  RequestBuilder &isa(std::string IsaName);
  /// Any GenOptions key=value (see slingen/OptionsIO.h for the key set);
  /// the named setters above are sugar for these.
  RequestBuilder &option(std::string Key, std::string Value);
  /// Also request the `<name>_batch(int count, ...)` entry point.
  RequestBuilder &batched(bool On = true);
  /// Batched iteration strategy: loop | vec | fused | auto. Requires
  /// batched().
  RequestBuilder &strategy(std::string Name);
  /// Batched dispatch width (0 = serving side's policy, k >= 1 pins).
  /// Requires batched().
  RequestBuilder &threads(int K);
  /// Rank variants by measured cycles instead of the static cost model
  /// (produce-time policy; an already-cached kernel is served as-is).
  RequestBuilder &measure(bool On = true);
  /// Materialize the compiled object bytes on the Kernel (default on;
  /// turn off to skip shipping/reading the .so when only the C matters).
  RequestBuilder &wantObject(bool On);
  /// Attach the serving side's per-phase timing breakdown to the Kernel
  /// (Kernel::timing()). Costs one small extra field on remote responses;
  /// a daemon too old to know the field serves the kernel without a
  /// breakdown rather than failing.
  RequestBuilder &wantTiming(bool On = true);
  /// Bound each get() of this request to \p Ms milliseconds end to end
  /// (0 = no deadline). The budget is enforced client-side -- a stalled
  /// daemon fails the request with Code::DeadlineExceeded in bounded time
  /// -- and shipped to the daemon, which sheds work whose deadline already
  /// expired instead of generating a kernel nobody is waiting for. A
  /// daemon too old to know the field serves the request without
  /// daemon-side shedding; the client-side bound still holds.
  RequestBuilder &deadlineMs(int Ms);

  /// Validates and freezes the request.
  Result<Request> build() const;

private:
  std::string Source, SourceFile, StrategyName;
  std::vector<std::pair<std::string, std::string>> Options;
  bool Batched = false;
  int Threads = 0;
  int Measure = -1;
  bool WantObject = true;
  bool WantTiming = false;
  int DeadlineMs = 0;
};

//===----------------------------------------------------------------------===//
// Timing
//===----------------------------------------------------------------------===//

/// Where one get() spent its time: the serving side's per-phase breakdown
/// plus the client-measured round trip. All durations are microseconds;
/// a phase that did not run reports 0. Tier names how the request
/// resolved -- "mem" (memory-cache hit), "disk" (loaded from the disk
/// tier), "generated" (full produce), "joined" (coalesced onto another
/// caller's in-flight production of the same kernel).
struct TimingBreakdown {
  std::string Tier;
  long CacheUs = 0;   ///< memory-cache lookup
  long WaitUs = 0;    ///< time spent joined onto another request's work
  long DiskUs = 0;    ///< disk-tier probe/load (excluding any recompile)
  long GenUs = 0;     ///< generation: parse, variants, tuning, emission
  long TuneUs = 0;    ///< measured batch-strategy tuning (inside GenUs)
  long CompileUs = 0; ///< C compilation (JIT) time
  long TotalUs = 0;   ///< serving side's end-to-end time
  /// Wall time of the whole get() as seen by this client -- the only
  /// field measured client-side. RoundTripUs - TotalUs approximates
  /// wire + queueing cost for remote sessions.
  long RoundTripUs = 0;
};

//===----------------------------------------------------------------------===//
// Kernels
//===----------------------------------------------------------------------===//

namespace detail {
struct KernelState;
struct KernelFactory;
} // namespace detail

/// A served kernel: provenance plus typed dispatch. Cheap shared handle --
/// copies refer to the same immutable state, and the loaded shared object
/// stays mapped for as long as any handle (or in-flight call) needs it.
class Kernel {
public:
  /// Where the shared object came from. Provenance only: call() and
  /// callBatch() behave identically for both.
  enum class Origin { Local, Remote };

  Kernel() = default; ///< empty handle; valid() is false

  bool valid() const { return S != nullptr; }
  Origin origin() const;

  //===--- provenance -----------------------------------------------------===//

  /// 16-hex content key (the cache/wire identity of this kernel).
  const std::string &key() const;
  const std::string &functionName() const;
  const std::string &isa() const;
  /// The full emitted C translation unit.
  const std::string &cSource() const;
  int numParams() const;
  bool batched() const;
  /// Resolved batch strategy name ("loop"/"vec"/"fused"); empty when not
  /// batched.
  const std::string &strategy() const;
  /// Resolved batched dispatch width (>= 1; meaningful when batched()).
  int batchThreads() const;
  long staticCost() const;
  bool measured() const;
  double measuredCycles() const;
  /// The compiled shared object, byte for byte; empty when the kernel is
  /// source-only or the request said wantObject(false). Identical bytes
  /// for the same request whether served locally or by a daemon.
  const std::string &objectBytes() const;
  /// Phase breakdown of the get() that produced this handle, or null when
  /// the request did not ask (wantTiming()) or the serving side predates
  /// the field. A property of that one request, not of the kernel: a
  /// second get() of the same source returns a fresh handle whose
  /// breakdown reports the (faster) cache hit.
  const TimingBreakdown *timing() const;

  //===--- dispatch -------------------------------------------------------===//

  /// True when a loaded, executable object is attached (a kernel can be
  /// source-only: no compiler on the serving side).
  bool callable() const;
  /// True when this host can execute the kernel's target ISA.
  bool hostRunnable() const;

  /// Single-instance dispatch: Buffers[i] points at parameter i's
  /// row-major storage. Fails with NoCompiler (source-only) or
  /// NotRunnable (ISA wider than the host).
  Status call(double *const *Buffers) const;

  /// Batched dispatch over \p Count contiguous instances per parameter
  /// (instance b of parameter i at Buffers[i] + b*Rows_i*Cols_i), spread
  /// across batchThreads() workers when the kernel was tuned for more
  /// than one. Additionally fails with InvalidRequest when the kernel was
  /// not requested batched.
  Status callBatch(int Count, double *const *Buffers) const;

private:
  friend struct detail::KernelFactory;
  std::shared_ptr<const detail::KernelState> S;
};

//===----------------------------------------------------------------------===//
// Sessions
//===----------------------------------------------------------------------===//

namespace detail {
class Backend;
} // namespace detail

/// Knobs for Session::open that are not part of the address string.
struct SessionConfig {
  /// ServiceConfig key=value pairs applied to the in-process service of a
  /// `local:` (or degraded `auto:`) backend, in order -- e.g.
  /// {"measure","1"}, {"cache-max-bytes","1073741824"}. Unknown keys fail
  /// open() with InvalidRequest. See service serializeServiceConfig for
  /// the key set.
  std::vector<std::pair<std::string, std::string>> ServiceOptions;

  /// Automatic retries (beyond the first attempt) for remote requests
  /// that fail retry-safely: connect failures, transport deaths, and
  /// daemon-side Overloaded sheds. Each retry reconnects and backs off
  /// exponentially (RetryBackoffMs * 2^attempt, jittered, capped at 2 s);
  /// a request deadline caps the whole sequence -- no retry is attempted
  /// that could not finish in budget. 0 disables retries entirely.
  int MaxRetries = 2;
  /// Base backoff before the first retry, in milliseconds.
  int RetryBackoffMs = 20;
  /// Bound on each TCP/Unix connect attempt, in milliseconds: an
  /// unreachable daemon address fails in this much time, not the
  /// kernel's minutes-long SYN-retry budget.
  int ConnectTimeoutMs = 10000;
};

/// A connection to one kernel source. Movable, not copyable; one Session
/// serves requests strictly sequentially (share kernels, not sessions,
/// across threads -- concurrent callers open their own, exactly as with
/// the raw socket client).
class Session {
public:
  enum class BackendKind { Local, Remote, Fallback };

  /// Resolves \p Address (grammar in the file comment) and connects.
  /// Remote backends connect eagerly, so an unreachable daemon fails here
  /// with ConnectFailed; `auto:` always succeeds (a dead daemon degrades
  /// to local). Local backends validate Config.ServiceOptions here.
  static Result<Session> open(const std::string &Address,
                              SessionConfig Config = {});

  Session(Session &&) noexcept;
  Session &operator=(Session &&) noexcept;
  ~Session();

  /// Serves the kernel for \p R, generating/compiling (locally or
  /// daemon-side) only on a cache miss.
  Result<Kernel> get(const Request &R);

  /// Queues background generation for \p R so a later get() is a warm
  /// hit. Returns once queueing is acknowledged, not when generation
  /// finishes (see drain()).
  Status warm(const Request &R);

  /// Blocks until background work queued by warm() has finished. Remote
  /// backends return Ok immediately (the daemon owns its queue).
  Status drain();

  /// Liveness probe (local backends always answer Ok).
  Status ping();

  /// Serving-side counters as `key=value` lines (mem-hits, misses,
  /// generations, ...; one schema for local and remote).
  Result<std::string> stats();

  /// The serving side's full metrics scrape: every registry metric as
  /// globally sorted `key=value` lines (histograms expanded to
  /// count/sum/min/max/p50/p90/p99), plus -- against a daemon -- its
  /// bounded per-kernel / per-peer top-K tables. Old daemons that predate
  /// the METRICS verb answer InvalidRequest.
  Result<std::string> metrics();

  BackendKind backend() const;
  const std::string &address() const;

private:
  Session();
  std::unique_ptr<detail::Backend> B;
  std::string Addr;
};

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//
//
// Process-wide request tracing. While enabled, every layer of the stack
// records its phase spans (cache lookup, generation, C compile, tuner
// measurement, batch dispatch, wire round trips, ...) into a bounded
// in-memory ring; export produces Chrome trace-event JSON loadable in
// chrome://tracing or Perfetto. Off by default and cheap when off (one
// relaxed atomic load per would-be span). These act on the whole process,
// not one Session: spans from an in-process service land in the same
// trace as the client-side round-trip spans that enclose them.

/// Turns span collection on or off (process-wide).
void setTracing(bool On);
bool tracingEnabled();
/// The collected spans as a Chrome trace-event JSON document.
std::string exportTraceJson();
/// Writes exportTraceJson() to \p Path; false (with \p Err) on I/O error.
bool exportTraceJson(const std::string &Path, std::string &Err);
/// Discards all collected spans (collection state is unchanged).
void clearTrace();

} // namespace client
} // namespace slingen

/// The short spelling used throughout the docs: sl::Session, sl::Kernel...
namespace sl = slingen::client;

#endif // SLINGEN_CLIENT_H
