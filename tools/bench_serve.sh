#!/bin/sh
# tools/bench_serve.sh - record serving-stack latency under load.
#
# Starts a private sld (fresh cache, unix socket in a temp dir), drives it
# with bench/serve_load (K concurrent clients over a mixed potrf kernel
# set, one cold pass and one warm pass), and writes BENCH_serve.json at
# the repo root: request-latency p50/p90/p99 per pass plus hit rates
# diffed from the daemon's STATS counters. The cold run's percentiles
# carry generation+compile cost; the warm run's are pure cache serving --
# the gap is the latency cliff the two-tier cache exists to create.
#
#   bench_serve.sh [--smoke]
#
# --smoke trims to 2 clients x 2 requests over one size with a short
# window; check.sh uses it as a CI liveness probe. Writes a valid stub
# JSON (and succeeds) when the binaries are not built.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${BENCH_OUT:-$ROOT/BENCH_serve.json}"
BIN="$BUILD/bench/bench_serve_load"
SLD="$BUILD/sld"

CLIENTS=4 REQUESTS=8 SIZES=4,6,8
if [ "${1:-}" = "--smoke" ]; then
  CLIENTS=2 REQUESTS=2 SIZES=4
fi

if [ ! -x "$BIN" ] || [ ! -x "$SLD" ]; then
  echo "bench_serve.sh: $BIN or $SLD not built (configure with" \
       "-DSLINGEN_BUILD_BENCH=ON); writing stub" >&2
  printf '{"bench": "serve_load", "runs": [], "skipped": "binary not built"}\n' > "$OUT"
  exit 0
fi

TMP=$(mktemp -d "${TMPDIR:-/tmp}/bench_serve.XXXXXX")
SOCK="$TMP/sld.sock"
SLD_PID=""
cleanup() {
  [ -n "$SLD_PID" ] && kill "$SLD_PID" 2>/dev/null && wait "$SLD_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# A fresh cache dir makes the cold pass genuinely cold on every run.
"$SLD" -socket "$SOCK" -cache-dir "$TMP/cache" 2> "$TMP/sld.log" &
SLD_PID=$!

# Wait for the socket to come up (the daemon prints "serving" once bound).
TRIES=0
while [ ! -S "$SOCK" ]; do
  TRIES=$((TRIES + 1))
  if [ "$TRIES" -gt 50 ]; then
    echo "bench_serve.sh: sld did not come up; log:" >&2
    cat "$TMP/sld.log" >&2
    exit 1
  fi
  sleep 0.1
done

"$BIN" -connect "unix:$SOCK" -clients "$CLIENTS" -requests "$REQUESTS" \
       -sizes "$SIZES" -out "$OUT"
echo "bench_serve.sh: wrote $OUT"
