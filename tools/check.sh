#!/bin/sh
# tools/check.sh - the single CI entry point.
#
# Runs the tier-1 verify line (configure, build, ctest) followed by an slc
# smoke test over examples/ and an sld daemon round trip. Exits non-zero on
# the first failure.
#
# CHECK_SANITIZE=address (or thread/undefined) reruns everything in a
# sanitized build tree (build-<sanitizer>/ unless BUILD_DIR overrides).
# CHECK_SANITIZE=all runs the address, thread, and undefined legs in
# sequence (each in its own build-<sanitizer>/ tree; the sanitizers cannot
# be combined in one binary).
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
SANITIZE="${CHECK_SANITIZE:-}"
if [ "$SANITIZE" = "all" ]; then
  for LEG in address thread undefined; do
    echo "==== sanitizer leg: $LEG ===="
    CHECK_SANITIZE="$LEG" BUILD_DIR="" sh "$0"
  done
  echo "check.sh: all sanitizer legs green"
  exit 0
fi
if [ -n "$SANITIZE" ]; then
  BUILD="${BUILD_DIR:-$ROOT/build-$SANITIZE}"
else
  BUILD="${BUILD_DIR:-$ROOT/build}"
fi
JOBS=$(nproc 2>/dev/null || echo 4)

# The thread leg suppresses only the known TSan false positives around
# dlopen'd JIT kernels (see tools/tsan.supp for the rationale per entry).
if [ "$SANITIZE" = "thread" ]; then
  TSAN_OPTIONS="suppressions=$ROOT/tools/tsan.supp ${TSAN_OPTIONS:-}"
  export TSAN_OPTIONS
fi

echo "== configure =="
cmake -B "$BUILD" -S "$ROOT" -DSLINGEN_SANITIZE="$SANITIZE"

echo "== build =="
cmake --build "$BUILD" -j "$JOBS"

if [ -z "$SANITIZE" ]; then
  echo "== clang-tidy smoke =="
  # Static-analysis gate over the IR and runtime layers (the .clang-tidy
  # at the repo root pins the check set; WarningsAsErrors makes any new
  # warning fail the run). Uses the compile database the configure step
  # exports; skipped where clang-tidy is not installed.
  if command -v clang-tidy > /dev/null 2>&1; then
    clang-tidy -p "$BUILD" --quiet \
      "$ROOT"/src/cir/*.cpp "$ROOT"/src/runtime/*.cpp
  else
    echo "clang-tidy unavailable; skipping"
  fi
fi

echo "== ctest =="
(cd "$BUILD" && ctest --output-on-failure -j "$JOBS")

echo "== slc smoke =="
SMOKE_OUT=$(mktemp)
SMOKE_CACHE=$(mktemp -d)
SLD_PID=""
cleanup() {
  [ -n "$SLD_PID" ] && kill "$SLD_PID" 2>/dev/null || true
  rm -rf "$SMOKE_OUT" "$SMOKE_CACHE"
}
trap cleanup EXIT
for LA in "$ROOT"/examples/*.la; do
  echo "-- slc $(basename "$LA")"
  "$BUILD/slc" -isa avx "$LA" > "$SMOKE_OUT"
  grep -q "immintrin.h" "$SMOKE_OUT"
  "$BUILD/slc" -batch -cache-dir "$SMOKE_CACHE" "$LA" > "$SMOKE_OUT"
  grep -q "_batch(int count" "$SMOKE_OUT"
  # Second run must serve the identical kernel from the disk cache.
  "$BUILD/slc" -batch -cache-dir "$SMOKE_CACHE" "$LA" | cmp -s - "$SMOKE_OUT"
  # Every pinned batch strategy emits the shared batch ABI plus the
  # _batch_span sub-range entry threaded dispatch needs.
  "$BUILD/slc" -batch -batch-strategy vec "$LA" > "$SMOKE_OUT"
  grep -q "_batch(int count" "$SMOKE_OUT"
  grep -q "_batch_span(int start" "$SMOKE_OUT"
  "$BUILD/slc" -batch -batch-strategy fused "$LA" > "$SMOKE_OUT"
  grep -q "_batch(int count" "$SMOKE_OUT"
  grep -q "_fusedblk" "$SMOKE_OUT"
  # The count % nu remainder must run through the runtime-masked fused
  # tail block, never a scalar fallback loop.
  grep -q "_fusedtail" "$SMOKE_OUT"
  grep -q "int active_" "$SMOKE_OUT"
  ! grep -q "for (; b < count; ++b)" "$SMOKE_OUT"
  "$BUILD/slc" -batch -batch-strategy loop "$LA" > "$SMOKE_OUT"
  grep -q "_batch(int count" "$SMOKE_OUT"
  # The C-IR static verifier must accept every emission -- the scalar
  # function and all three widened batch variants (exit is non-zero on
  # any rejection; the per-emission report lands on stderr).
  "$BUILD/slc" -verify-ir -batch -isa avx "$LA" > /dev/null
done

echo "== threaded-batch smoke =="
# A batched entry produced with a pinned dispatch width must record it in
# the disk tier's .meta (threads=4), and the fused no-transpose emission
# must be what a fused-pinned request serves.
THREAD_CACHE="$SMOKE_CACHE/threaded_cache"
"$BUILD/slc" -batch -batch-strategy fused -batch-threads 4 \
  -cache-dir "$THREAD_CACHE" "$ROOT/examples/potrf.la" > "$SMOKE_OUT"
grep -q "_fusedblk" "$SMOKE_OUT"
grep -rq "threads=4" "$THREAD_CACHE"
grep -rq "strategy=fused" "$THREAD_CACHE"
# Pinned-pool execution smoke: 4 pool threads (workers pinned to cores by
# default) over ragged odd counts, exact coverage and sticky assignment.
"$BUILD/tests/batch_test" \
  --gtest_filter='BatchPool.*:Batched.ThreadedDispatch*' > "$SMOKE_OUT" \
  || { cat "$SMOKE_OUT"; exit 1; }
# And the same dispatch path with pinning disabled via the env knob.
SLINGEN_POOL_PIN=0 "$BUILD/tests/batch_test" \
  --gtest_filter='BatchPool.CoversEveryIndexExactlyOnce' > "$SMOKE_OUT" \
  || { cat "$SMOKE_OUT"; exit 1; }

echo "== sld round-trip smoke =="
# Spawn a daemon on a temp socket, request a kernel through slc -connect,
# and require the served artifact to be byte-identical to what a local
# KernelService produces for the same request -- plus a daemon-side warm.
SLD_SOCK="$SMOKE_CACHE/sld.sock"
"$BUILD/sld" -socket "$SLD_SOCK" -cache-dir "$SMOKE_CACHE/sld_cache" \
  2> "$SMOKE_CACHE/sld.log" &
SLD_PID=$!
for _ in $(seq 100); do
  [ -S "$SLD_SOCK" ] && break
  kill -0 "$SLD_PID" 2>/dev/null || { cat "$SMOKE_CACHE/sld.log"; exit 1; }
  sleep 0.1
done
[ -S "$SLD_SOCK" ]
for LA in "$ROOT"/examples/*.la; do
  echo "-- sld round trip $(basename "$LA")"
  "$BUILD/slc" -connect "$SLD_SOCK" "$LA" > "$SMOKE_OUT"
  "$BUILD/slc" -cache-dir "$SMOKE_CACHE/local_cache" "$LA" \
    | cmp -s - "$SMOKE_OUT"
done
# Warm the daemon for every example, then confirm it still answers.
ls "$ROOT"/examples/*.la > "$SMOKE_CACHE/warm.list"
"$BUILD/slc" -connect "$SLD_SOCK" -warm "$SMOKE_CACHE/warm.list" 2>/dev/null
"$BUILD/slc" -connect "$SLD_SOCK" \
  "$(head -1 "$SMOKE_CACHE/warm.list")" > "$SMOKE_OUT"
grep -q "cache key:" "$SMOKE_OUT"

echo "== observability smoke =="
# A traced, timed request against the live daemon: the Chrome trace export
# must be loadable JSON with at least one complete span, and the wire must
# deliver the server-side phase breakdown.
"$BUILD/slc" -connect "$SLD_SOCK" -timing \
  -trace-out "$SMOKE_CACHE/trace.json" "$ROOT/examples/potrf.la" \
  > "$SMOKE_OUT" 2> "$SMOKE_CACHE/timing.log"
grep -q "timing: tier=" "$SMOKE_CACHE/timing.log"
grep -q '"traceEvents"' "$SMOKE_CACHE/trace.json"
grep -q '"ph": "X"' "$SMOKE_CACHE/trace.json" # >= 1 complete span
if command -v python3 > /dev/null 2>&1; then
  python3 -c 'import json, sys
spans = json.load(open(sys.argv[1]))["traceEvents"]
assert len(spans) >= 1 and all("dur" in s for s in spans), "bad trace"' \
    "$SMOKE_CACHE/trace.json"
fi
# The daemon's STATS now carries the disk-tier gauges, and slc -stats
# derives hit rates from them.
"$BUILD/slc" -connect "$SLD_SOCK" -stats > "$SMOKE_CACHE/stats.out"
grep -q "mem-entries=" "$SMOKE_CACHE/stats.out"
grep -q "disk-entries=" "$SMOKE_CACHE/stats.out"
grep -q "disk-bytes=" "$SMOKE_CACHE/stats.out"
grep -q "disk-scans=" "$SMOKE_CACHE/stats.out"
grep -q "# requests=" "$SMOKE_CACHE/stats.out"
grep -q " hit=" "$SMOKE_CACHE/stats.out"
# The METRICS verb scrapes the whole registry (sorted keys) plus the
# per-kernel/per-peer top-K tables over the wire.
"$BUILD/slc" -connect "$SLD_SOCK" -metrics > "$SMOKE_CACHE/metrics.out"
grep -q "server.get.us.count=" "$SMOKE_CACHE/metrics.out"
grep -q "top.kernel." "$SMOKE_CACHE/metrics.out"
grep -q "top.peer." "$SMOKE_CACHE/metrics.out"
# SIGUSR1 dumps counters + histograms to stderr without disturbing service.
kill -USR1 "$SLD_PID"
sleep 0.3
grep -q "stats dump" "$SMOKE_CACHE/sld.log"
grep -q "service.get.us.count=" "$SMOKE_CACHE/sld.log"
"$BUILD/slc" -connect "$SLD_SOCK" "$ROOT/examples/potrf.la" > /dev/null
kill "$SLD_PID"
for _ in $(seq 100); do
  kill -0 "$SLD_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SLD_PID" 2>/dev/null; then
  echo "sld did not shut down cleanly"; exit 1
fi
SLD_PID=""
[ ! -S "$SLD_SOCK" ] # clean shutdown removes the socket

echo "== client API install smoke =="
# Export the public API into a scratch prefix, compile the session example
# *out of tree* against it (public header + static lib only), then serve
# one request through `local:` and through a live sld daemon: stdout
# (provenance + numeric checksums) and the saved shared objects must match
# byte for byte -- the facade's local/remote identity promise.
INSTALL="$SMOKE_CACHE/install"
cmake --install "$BUILD" --prefix "$INSTALL" > /dev/null
test -f "$INSTALL/include/slingen/client.h"
# GNUInstallDirs puts the archive in lib/ or lib64/ depending on platform.
LIBSLINGEN=$(find "$INSTALL" -name libslingen.a | head -1)
test -n "$LIBSLINGEN"
# Sanitized legs must build the out-of-tree client with the same
# sanitizer the installed archive was compiled with, or the link drops
# the runtime (undefined __tsan_init and friends).
c++ -std=c++20 ${SANITIZE:+-fsanitize=$SANITIZE} -I"$INSTALL/include" \
  "$ROOT/examples/client_session.cpp" \
  "$LIBSLINGEN" -ldl -lpthread -lm \
  -o "$SMOKE_CACHE/session_demo"
SLD2_SOCK="$SMOKE_CACHE/sld2.sock"
"$BUILD/sld" -socket "$SLD2_SOCK" -cache-dir "$SMOKE_CACHE/sld2_cache" \
  2> "$SMOKE_CACHE/sld2.log" &
SLD_PID=$!
for _ in $(seq 100); do
  [ -S "$SLD2_SOCK" ] && break
  kill -0 "$SLD_PID" 2>/dev/null || { cat "$SMOKE_CACHE/sld2.log"; exit 1; }
  sleep 0.1
done
"$SMOKE_CACHE/session_demo" "local:$SMOKE_CACHE/session_cache" \
  "$ROOT/examples/potrf.la" -so "$SMOKE_CACHE/session_local.so" \
  > "$SMOKE_CACHE/session_local.out" 2> /dev/null
"$SMOKE_CACHE/session_demo" "$SLD2_SOCK" \
  "$ROOT/examples/potrf.la" -so "$SMOKE_CACHE/session_remote.so" \
  > "$SMOKE_CACHE/session_remote.out" 2> /dev/null
cmp "$SMOKE_CACHE/session_local.so" "$SMOKE_CACHE/session_remote.so"
cmp "$SMOKE_CACHE/session_local.out" "$SMOKE_CACHE/session_remote.out"
grep -q "cache key:" "$SMOKE_CACHE/session_local.out"
# The fallback address serves even though this daemon is now gone.
kill "$SLD_PID"
for _ in $(seq 100); do
  kill -0 "$SLD_PID" 2>/dev/null || break
  sleep 0.1
done
SLD_PID=""
"$SMOKE_CACHE/session_demo" "auto:$SLD2_SOCK" "$ROOT/examples/potrf.la" \
  > "$SMOKE_CACHE/session_auto.out" 2> /dev/null
grep -q "cache key:" "$SMOKE_CACHE/session_auto.out"

echo "== chaos smoke =="
# A fault-armed daemon -- every generation stalls 300ms and at most one
# runs at a time -- under 8 concurrent deadline-carrying clients on
# distinct keys. Everything must come back in bounded wall clock with
# typed outcomes only (served, overloaded, or deadline-exceeded), and the
# daemon must survive to serve a clean request afterwards.
SLD3_SOCK="$SMOKE_CACHE/sld3.sock"
SLINGEN_FAULTS="slow-generate:0:300" "$BUILD/sld" -socket "$SLD3_SOCK" \
  -max-concurrent-gen 1 -max-conns 32 -idle-timeout-ms 10000 \
  -service use-compiler=0 2> "$SMOKE_CACHE/sld3.log" &
SLD_PID=$!
for _ in $(seq 100); do
  [ -S "$SLD3_SOCK" ] && break
  kill -0 "$SLD_PID" 2>/dev/null || { cat "$SMOKE_CACHE/sld3.log"; exit 1; }
  sleep 0.1
done
[ -S "$SLD3_SOCK" ]
CHAOS_START=$(date +%s)
CHAOS_PIDS=""
for I in $(seq 8); do
  "$BUILD/slc" -connect "$SLD3_SOCK" -timeout-ms 10000 -retries 3 \
    -name "chaos_$I" "$ROOT/examples/potrf.la" \
    > "$SMOKE_CACHE/chaos_$I.out" 2> "$SMOKE_CACHE/chaos_$I.err" &
  CHAOS_PIDS="$CHAOS_PIDS $!"
done
SERVED=0
SHED=0
I=0
for PID in $CHAOS_PIDS; do
  I=$((I + 1))
  if wait "$PID"; then
    SERVED=$((SERVED + 1))
    grep -q "cache key:" "$SMOKE_CACHE/chaos_$I.out"
  else
    SHED=$((SHED + 1))
    # Failures must be the documented resilience verdicts, nothing else.
    grep -Eq "overloaded|deadline" "$SMOKE_CACHE/chaos_$I.err"
  fi
done
CHAOS_ELAPSED=$(( $(date +%s) - CHAOS_START ))
echo "-- chaos: $SERVED served, $SHED shed/expired in ${CHAOS_ELAPSED}s"
[ $((SERVED + SHED)) -eq 8 ]
[ "$SERVED" -ge 1 ]
[ "$CHAOS_ELAPSED" -lt 60 ]
# The daemon survived the storm: a fresh request serves, and the STATS
# document carries the resilience counters.
"$BUILD/slc" -connect "$SLD3_SOCK" -timeout-ms 30000 \
  "$ROOT/examples/potrf.la" > "$SMOKE_OUT"
grep -q "cache key:" "$SMOKE_OUT"
"$BUILD/slc" -connect "$SLD3_SOCK" -stats > "$SMOKE_CACHE/chaos_stats.out"
grep -q "shed=" "$SMOKE_CACHE/chaos_stats.out"
grep -q "deadline-expired=" "$SMOKE_CACHE/chaos_stats.out"
grep -q "quarantined=" "$SMOKE_CACHE/chaos_stats.out"
kill "$SLD_PID"
for _ in $(seq 100); do
  kill -0 "$SLD_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SLD_PID" 2>/dev/null; then
  echo "sld did not shut down cleanly after the chaos run"; exit 1
fi
SLD_PID=""

echo "== crash-dump smoke =="
# A fault-armed daemon with one GET parked in a 20s generation stall is
# SIGSEGV'd mid-flight. The pre-opened crash-dump file must carry the
# signal banner plus a parseable flight-recorder ring whose newest record
# is the in-flight request: phase=start with no matching phase=done.
SLD4_SOCK="$SMOKE_CACHE/sld4.sock"
CRASH_DUMP="$SMOKE_CACHE/sld4.crash"
SLINGEN_FAULTS="slow-generate:0:20000" "$BUILD/sld" -socket "$SLD4_SOCK" \
  -cache-dir "$SMOKE_CACHE/sld4_cache" -crash-dump "$CRASH_DUMP" \
  -service use-compiler=0 2> "$SMOKE_CACHE/sld4.log" &
SLD_PID=$!
for _ in $(seq 100); do
  [ -S "$SLD4_SOCK" ] && break
  kill -0 "$SLD_PID" 2>/dev/null || { cat "$SMOKE_CACHE/sld4.log"; exit 1; }
  sleep 0.1
done
[ -S "$SLD4_SOCK" ]
"$BUILD/slc" -connect "$SLD4_SOCK" -timeout-ms 30000 -name crash_req \
  "$ROOT/examples/potrf.la" > /dev/null 2>&1 &
CRASH_CLIENT=$!
sleep 1
kill -SEGV "$SLD_PID"
for _ in $(seq 100); do
  kill -0 "$SLD_PID" 2>/dev/null || break
  sleep 0.1
done
wait "$CRASH_CLIENT" 2>/dev/null || true
SLD_PID=""
grep -q "sld: fatal SIGSEGV" "$CRASH_DUMP"
grep -q "flight-recorder dump:" "$CRASH_DUMP"
grep -q "phase=start verb=get" "$CRASH_DUMP"
if grep -q "phase=done" "$CRASH_DUMP"; then
  echo "crash dump claims the in-flight request completed"; exit 1
fi

echo "== batch strategy bench smoke =="
# One (size, count) point; the binary itself skips cleanly when no native
# compiler or no vector ISA is available, so this passes everywhere.
BENCH_OUT="$SMOKE_CACHE/BENCH_batch.json" "$ROOT/tools/bench_batch.sh" --smoke
test -s "$SMOKE_CACHE/BENCH_batch.json"

echo "== serve load bench smoke =="
# A tiny cold+warm load run against a private daemon; the output must be
# well-formed with both passes present.
BENCH_OUT="$SMOKE_CACHE/BENCH_serve.json" "$ROOT/tools/bench_serve.sh" --smoke
test -s "$SMOKE_CACHE/BENCH_serve.json"
grep -q '"runs"' "$SMOKE_CACHE/BENCH_serve.json"

echo "== serve bench warm-p99 gate =="
# The warm pass is pure cache serving, so a large regression there is a
# serving-stack defect rather than compiler noise. Fail only when the
# fresh warm p99 is both >2x the committed baseline in BENCH_serve.json
# and above a 2ms noise floor -- sub-millisecond numbers jitter too much
# on shared CI machines to gate on the ratio alone.
if command -v python3 > /dev/null 2>&1; then
  python3 - "$SMOKE_CACHE/BENCH_serve.json" "$ROOT/BENCH_serve.json" <<'PYEOF'
import json, sys

def warm_p99(path):
    with open(path) as f:
        doc = json.load(f)
    for run in doc.get("runs", []):
        if run.get("pass") == "warm":
            return run["p99_us"]
    return None

fresh = warm_p99(sys.argv[1])
committed = warm_p99(sys.argv[2])
if fresh is None or committed is None:
    print("p99 gate: warm pass missing (stub bench output); skipping")
    sys.exit(0)
print(f"p99 gate: fresh warm p99 {fresh}us vs committed {committed}us")
if fresh > 2 * committed and fresh > 2000:
    sys.exit(f"p99 gate: warm p99 regressed ({fresh}us > 2x {committed}us)")
PYEOF
else
  echo "p99 gate: python3 unavailable; skipping"
fi

echo "check.sh: all green"
