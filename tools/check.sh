#!/bin/sh
# tools/check.sh - the single CI entry point.
#
# Runs the tier-1 verify line (configure, build, ctest) followed by an slc
# smoke test over examples/. Exits non-zero on the first failure.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS=$(nproc 2>/dev/null || echo 4)

echo "== configure =="
cmake -B "$BUILD" -S "$ROOT"

echo "== build =="
cmake --build "$BUILD" -j "$JOBS"

echo "== ctest =="
(cd "$BUILD" && ctest --output-on-failure -j "$JOBS")

echo "== slc smoke =="
SMOKE_OUT=$(mktemp)
SMOKE_CACHE=$(mktemp -d)
trap 'rm -rf "$SMOKE_OUT" "$SMOKE_CACHE"' EXIT
for LA in "$ROOT"/examples/*.la; do
  echo "-- slc $(basename "$LA")"
  "$BUILD/slc" -isa avx "$LA" > "$SMOKE_OUT"
  grep -q "immintrin.h" "$SMOKE_OUT"
  "$BUILD/slc" -batch -cache-dir "$SMOKE_CACHE" "$LA" > "$SMOKE_OUT"
  grep -q "_batch(int count" "$SMOKE_OUT"
  # Second run must serve the identical kernel from the disk cache.
  "$BUILD/slc" -batch -cache-dir "$SMOKE_CACHE" "$LA" | cmp -s - "$SMOKE_OUT"
  # Both pinned batch strategies emit the shared batch ABI.
  "$BUILD/slc" -batch -batch-strategy vec "$LA" > "$SMOKE_OUT"
  grep -q "_batch(int count" "$SMOKE_OUT"
  "$BUILD/slc" -batch -batch-strategy loop "$LA" > "$SMOKE_OUT"
  grep -q "_batch(int count" "$SMOKE_OUT"
done

echo "== batch strategy bench smoke =="
# One (size, count) point; the binary itself skips cleanly when no native
# compiler or no vector ISA is available, so this passes everywhere.
BENCH_OUT="$SMOKE_CACHE/BENCH_batch.json" "$ROOT/tools/bench_batch.sh" --smoke
test -s "$SMOKE_CACHE/BENCH_batch.json"

echo "check.sh: all green"
