//===- tools/sld.cpp - the SLinGen kernel daemon ---------------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Serves KernelService over a socket (see src/net/): clients send LA source
// + GenOptions, the daemon answers with emitted C, provenance, and the
// compiled .so bytes. One daemon amortizes the generator, the two cache
// tiers, the single-flight dedup, and the prefetch pool across every
// client on the machine.
//
//   sld [options]
//     -socket <path>     Unix-domain socket to serve (default
//                        /tmp/sld.<uid>.sock)
//     -tcp <port>        also serve 127.0.0.1:<port> (0 = ephemeral,
//                        printed on startup)
//     -cache-dir <dir>   disk cache tier (strongly recommended)
//     -measure           rank variants by measured cycles
//     -workers <n>       prefetch worker threads (default 2)
//     -max-conns <n>     shed connections beyond <n> with an immediate
//                        overloaded reply (0 = unlimited, the default)
//     -idle-timeout-ms <n> close connections idle for <n> ms between
//                        requests (0 = never, the default)
//     -max-concurrent-gen <k> admit at most <k> concurrent generations;
//                        excess cache misses get overloaded (0 =
//                        unlimited, the default; cache hits always serve)
//     -service k=v       any ServiceConfig option by name (see
//                        serializeServiceConfig keys)
//     -stats-interval <s> print a one-line serving summary to stderr
//                        every <s> seconds
//     -log-json <path>   append rate-limited JSONL events (errors, sheds,
//                        quarantines, slow requests) to <path>
//     -slow-ms <k>       log GET requests slower than <k> ms to the event
//                        log (needs -log-json; 0 = off, the default)
//     -crash-dump <path> flight-recorder dump file for fatal signals
//                        (default <socket>.crash)
//     -print-config      print the effective ServiceConfig and exit
//
// Runs in the foreground (a process supervisor owns daemonization);
// SIGINT/SIGTERM drain the prefetch pool and exit cleanly. SIGUSR1 dumps
// the full service stats, every registered metric (histograms with
// percentiles), and the flight-recorder ring to stderr without disturbing
// service. SIGSEGV/SIGABRT dump the flight recorder to the pre-opened
// crash file (async-signal-safe: no malloc, no stdio) and re-raise, so
// even a dying daemon leaves a black-box record of its in-flight work.
//
//===----------------------------------------------------------------------===//

// sld is the *server* half of the system: it owns a KernelService and the
// socket front end. net/Server.h deliberately carries the service types --
// clients (slc, examples, out-of-tree users) go through slingen/client.h
// instead and never touch these headers.
#include "net/Server.h"
#include "obs/EventLog.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "support/Format.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include <fcntl.h>
#include <pthread.h>
#include <unistd.h>

using namespace slingen;

namespace {

void usage(const char *Argv0) {
  fprintf(stderr,
          "usage: %s [options]\n"
          "  -socket <path>   unix socket to serve (default /tmp/sld.<uid>."
          "sock)\n"
          "  -tcp <port>      also serve 127.0.0.1:<port> (0 = ephemeral)\n"
          "  -cache-dir <dir> persistent kernel cache directory\n"
          "  -measure         rank variants by measured cycles\n"
          "  -workers <n>     prefetch worker threads (default 2)\n"
          "  -max-conns <n>   shed connections beyond <n> (0 = unlimited)\n"
          "  -idle-timeout-ms <n>  close idle connections after <n> ms\n"
          "  -max-concurrent-gen <k>  concurrent generation cap (0 = off)\n"
          "  -service k=v     set any ServiceConfig option by key\n"
          "  -stats-interval <s>  periodic one-line serving summary\n"
          "  -log-json <path> append JSONL events (errors/sheds/slow/...)\n"
          "  -slow-ms <k>     event-log GETs slower than <k> ms (0 = off)\n"
          "  -crash-dump <path>  flight-recorder file for fatal signals\n"
          "  -print-config    print the effective config and exit\n",
          Argv0);
}

/// The SIGUSR1 dump: full service counters, every registered metric
/// (histograms expanded to count/sum/min/max/p50/p90/p99), and the
/// flight-recorder ring of recent requests.
void dumpStats(service::KernelService &Service) {
  fprintf(stderr,
          "sld: --- stats dump ---\n%s--- metrics ---\n%s--- flight "
          "recorder ---\n%s---\n",
          service::serializeServiceStats(Service.stats()).c_str(),
          obs::Registry::global().renderText().c_str(),
          obs::FlightRecorder::global().renderText().c_str());
}

/// Pre-opened at startup so the fatal-signal handler never calls open()
/// (which may allocate a descriptor table slot but is async-signal-safe;
/// the real hazard is path strings and formatting, done here instead).
int CrashFd = -1;

/// SIGSEGV/SIGABRT: write the flight recorder to the pre-opened fd --
/// write() and integer formatting only, no malloc, no stdio -- then
/// restore the default disposition and re-raise so the process still
/// dies with the right signal (and core dump, where enabled).
void crashHandler(int Sig) {
  if (CrashFd >= 0) {
    const char *Name = Sig == SIGSEGV  ? "sld: fatal SIGSEGV\n"
                       : Sig == SIGABRT ? "sld: fatal SIGABRT\n"
                                         : "sld: fatal signal\n";
    // strlen is not formally async-signal-safe but touches only the
    // literal above; keep the banner best-effort regardless.
    ssize_t Ignored = write(CrashFd, Name, strlen(Name));
    (void)Ignored;
    obs::FlightRecorder::global().dumpTo(CrashFd);
    fsync(CrashFd);
  }
  signal(Sig, SIG_DFL);
  raise(Sig);
}

/// The -stats-interval line: request mix and hit rate at a glance,
/// cheap enough to leave on in production.
void printSummaryLine(service::KernelService &Service) {
  service::ServiceStats S = Service.stats();
  long Requests = S.MemHits + S.DiskHits + S.Misses;
  double HitRate =
      Requests > 0 ? 100.0 * (S.MemHits + S.DiskHits) / Requests : 0.0;
  fprintf(stderr,
          "sld: %ld reqs (%.1f%% hit) mem=%ld disk=%ld gen=%ld err=%ld | "
          "cache: %ld mem entries, %ld disk entries (%ld bytes)\n",
          Requests, HitRate, S.MemHits, S.DiskHits, S.Generations,
          S.Errors, S.MemEntries, S.DiskEntries, S.DiskBytes);
}

} // namespace

int main(int argc, char **argv) {
  service::ServiceConfig SC;
  net::ServerConfig NC;
  NC.UnixPath = formatf("/tmp/sld.%d.sock", static_cast<int>(getuid()));
  bool PrintConfig = false;
  int StatsInterval = 0;
  std::string LogJsonPath;
  std::string CrashDumpPath;
  std::string Err;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        usage(argv[0]);
        exit(1);
      }
      return argv[++I];
    };
    auto Apply = [&](const char *Key, const std::string &Value) {
      if (!service::applyServiceConfigOption(SC, Key, Value, Err)) {
        fprintf(stderr, "error: %s\n", Err.c_str());
        exit(1);
      }
    };
    if (Arg == "-socket")
      NC.UnixPath = Next();
    else if (Arg == "-tcp") {
      // Strict: a mistyped port must not silently become 0 (ephemeral).
      std::string Port = Next();
      bool Digits = !Port.empty();
      for (char C : Port)
        Digits = Digits && isdigit(static_cast<unsigned char>(C));
      if (!Digits || atoi(Port.c_str()) > 65535) {
        fprintf(stderr, "error: -tcp takes a port number 0-65535 "
                        "(0 = ephemeral)\n");
        return 1;
      }
      NC.TcpPort = atoi(Port.c_str());
    } else if (Arg == "-cache-dir")
      Apply("cache-dir", Next());
    else if (Arg == "-measure")
      Apply("measure", "1");
    else if (Arg == "-workers")
      Apply("prefetch-workers", Next());
    else if (Arg == "-max-conns" || Arg == "-idle-timeout-ms") {
      std::string N = Next();
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        fprintf(stderr, "error: %s takes a non-negative count (0 = off)\n",
                Arg.c_str());
        return 1;
      }
      if (Arg == "-max-conns")
        NC.MaxConns = atoi(N.c_str());
      else
        NC.IdleTimeoutMs = atoi(N.c_str());
    } else if (Arg == "-max-concurrent-gen")
      Apply("max-concurrent-gen", Next());
    else if (Arg == "-service") {
      std::string KV = Next();
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos) {
        fprintf(stderr, "error: -service takes key=value\n");
        return 1;
      }
      Apply(KV.substr(0, Eq).c_str(), KV.substr(Eq + 1));
    } else if (Arg == "-stats-interval") {
      std::string S = Next();
      StatsInterval = atoi(S.c_str());
      if (StatsInterval <= 0 ||
          S.find_first_not_of("0123456789") != std::string::npos) {
        fprintf(stderr,
                "error: -stats-interval takes a positive second count\n");
        return 1;
      }
    } else if (Arg == "-log-json")
      LogJsonPath = Next();
    else if (Arg == "-slow-ms") {
      std::string N = Next();
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        fprintf(stderr, "error: -slow-ms takes a non-negative ms count "
                        "(0 = off)\n");
        return 1;
      }
      NC.SlowMs = atoi(N.c_str());
    } else if (Arg == "-crash-dump")
      CrashDumpPath = Next();
    else if (Arg == "-print-config")
      PrintConfig = true;
    else if (Arg == "-h" || Arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      usage(argv[0]);
      return 1;
    }
  }

  if (PrintConfig) {
    fputs(service::serializeServiceConfig(SC).c_str(), stdout);
    return 0;
  }

  if (!LogJsonPath.empty()) {
    if (!obs::EventLog::global().open(LogJsonPath, Err)) {
      fprintf(stderr, "sld: %s\n", Err.c_str());
      return 1;
    }
  }

  // The black box: force the recorder's construction now (a lazy static
  // guard inside a signal handler could deadlock), pre-open the dump
  // file, and hook the fatal signals. These handlers stay *unblocked* --
  // they must fire on whichever thread faults, not wait in the sigwait
  // loop below (fatal signals are thread-directed and would otherwise
  // kill the process with no dump).
  obs::FlightRecorder::global();
  if (CrashDumpPath.empty())
    CrashDumpPath = NC.UnixPath + ".crash";
  CrashFd = open(CrashDumpPath.c_str(),
                 O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (CrashFd < 0)
    fprintf(stderr, "sld: warning: cannot open crash dump %s: %s\n",
            CrashDumpPath.c_str(), strerror(errno));
  struct sigaction SA;
  memset(&SA, 0, sizeof(SA));
  SA.sa_handler = crashHandler;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGSEGV, &SA, nullptr);
  sigaction(SIGABRT, &SA, nullptr);

  // Block the handled signals BEFORE the server spawns threads: every
  // thread inherits the mask, so SIGINT/SIGTERM/SIGUSR1 can only be
  // collected by the wait loop below -- delivered to an accept thread
  // instead, a signal would be swallowed as a spurious EINTR (or kill the
  // process, for SIGUSR1's default disposition).
  sigset_t WaitSet;
  sigemptyset(&WaitSet);
  sigaddset(&WaitSet, SIGINT);
  sigaddset(&WaitSet, SIGTERM);
  sigaddset(&WaitSet, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &WaitSet, nullptr);

  service::KernelService Service(SC);
  net::Server Server(Service, NC);
  if (!Server.start(Err)) {
    fprintf(stderr, "sld: %s\n", Err.c_str());
    return 1;
  }
  fprintf(stderr, "sld: serving on %s", Server.unixPath().c_str());
  if (Server.tcpPort() >= 0)
    fprintf(stderr, " and 127.0.0.1:%d", Server.tcpPort());
  fprintf(stderr, "%s%s\n",
          SC.CacheDir.empty() ? "" : ", cache at ",
          SC.CacheDir.c_str());

  // The accept/serve work happens on the server's threads; this thread
  // waits for signals and doubles as the stats reporter. sigtimedwait
  // with the interval as the timeout gives both behaviors one loop: a
  // timeout prints the summary line, SIGUSR1 dumps and continues, and
  // SIGINT/SIGTERM fall through to shutdown. Without -stats-interval the
  // timeout is infinite (plain sigwait semantics).
  for (;;) {
    int Sig;
    if (StatsInterval > 0) {
      timespec TS{};
      TS.tv_sec = StatsInterval;
      siginfo_t Info;
      Sig = sigtimedwait(&WaitSet, &Info, &TS);
      if (Sig < 0) {
        if (errno == EAGAIN) { // interval elapsed, nothing pending
          printSummaryLine(Service);
          continue;
        }
        continue; // EINTR
      }
    } else {
      if (sigwait(&WaitSet, &Sig) != 0)
        continue;
    }
    if (Sig == SIGUSR1) {
      dumpStats(Service);
      continue;
    }
    break; // SIGINT/SIGTERM
  }

  fprintf(stderr, "sld: shutting down (%ld frames served)\n",
          Server.framesServed());
  Server.stop();
  Service.drainPrefetches();
  return 0;
}
