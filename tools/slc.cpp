//===- tools/slc.cpp - the SLinGen command-line compiler -------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The user-facing generator: reads an LA program, runs the full pipeline,
// and writes a single-source C function.
//
//   slc [options] input.la
//     -o <file>        output C file (default: stdout)
//     -isa <name>      scalar | sse2 | avx | avx512 (default: avx)
//     -name <ident>    generated function name (default: from file name)
//     -variant <n,...> per-HLAC algorithm choice (default: autotune by
//                      cost model)
//     -max-variants N  autotuning search budget (default 16)
//     -measure         rank variants by JIT-compiled timings (KernelService
//                      measured autotuner; falls back to the cost model
//                      when no C compiler is available)
//     -cache-dir <dir> persist/reuse kernels in a KernelService disk cache
//     -batch           also emit the <name>_batch(int count, ...) entry
//     -batch-strategy  loop | vec | auto (default auto): how the batch
//                      entry iterates instances -- a scalar loop, one
//                      vector lane per instance (AoSoA), or pick per
//                      kernel (measured under -measure/-cache-dir when
//                      possible, by the static cost model otherwise)
//     -print-basic     also print the Stage 1 basic program to stderr
//     -print-variants  list HLACs and their variant counts, then exit
//
//===----------------------------------------------------------------------===//

#include "la/Lower.h"
#include "service/KernelService.h"
#include "service/Tuner.h"
#include "slingen/SLinGen.h"
#include "support/Format.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace slingen;

namespace {

void usage(const char *Argv0) {
  fprintf(stderr,
          "usage: %s [options] input.la\n"
          "  -o <file>         output C file (default: stdout)\n"
          "  -isa <name>       scalar | sse2 | avx | avx512 (default: avx)\n"
          "  -name <ident>     generated function name\n"
          "  -variant <n,...>  per-HLAC algorithm indices\n"
          "  -max-variants N   autotuning search budget (default 16)\n"
          "  -measure          rank variants by measured cycles (needs a C\n"
          "                    compiler; falls back to the static model)\n"
          "  -cache-dir <dir>  persist/reuse compiled kernels across runs\n"
          "  -batch            also emit <name>_batch(int count, ...)\n"
          "  -batch-strategy <s>  loop | vec | auto (default auto): scalar\n"
          "                    loop, one vector lane per instance, or pick\n"
          "                    per kernel\n"
          "  -print-basic      print the Stage 1 basic program to stderr\n"
          "  -print-variants   list HLAC variant counts and exit\n",
          Argv0);
}

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Name = Slash == std::string::npos ? Path
                                                : Path.substr(Slash + 1);
  size_t Dot = Name.find_last_of('.');
  if (Dot != std::string::npos)
    Name = Name.substr(0, Dot);
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  if (Name.empty() || isdigit(static_cast<unsigned char>(Name[0])))
    Name = "kernel_" + Name;
  return Name;
}

} // namespace

int main(int argc, char **argv) {
  std::string Input, Output, Isa = "avx", Name, VariantStr, CacheDir;
  int MaxVariants = 16;
  bool PrintBasic = false, PrintVariants = false, Measure = false,
       Batch = false, StrategySet = false;
  BatchStrategy Strategy = BatchStrategy::Auto;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        usage(argv[0]);
        exit(1);
      }
      return argv[++I];
    };
    if (Arg == "-o")
      Output = Next();
    else if (Arg == "-isa")
      Isa = Next();
    else if (Arg == "-name")
      Name = Next();
    else if (Arg == "-variant")
      VariantStr = Next();
    else if (Arg == "-max-variants")
      MaxVariants = atoi(Next());
    else if (Arg == "-measure")
      Measure = true;
    else if (Arg == "-cache-dir")
      CacheDir = Next();
    else if (Arg == "-batch")
      Batch = true;
    else if (Arg == "-batch-strategy") {
      auto S = batchStrategyByName(Next());
      if (!S) {
        fprintf(stderr, "error: -batch-strategy takes loop, vec, or auto\n");
        return 1;
      }
      Strategy = *S;
      StrategySet = true;
    }
    else if (Arg == "-print-basic")
      PrintBasic = true;
    else if (Arg == "-print-variants")
      PrintVariants = true;
    else if (Arg == "-h" || Arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      usage(argv[0]);
      return 1;
    } else if (Input.empty()) {
      Input = Arg;
    } else {
      fprintf(stderr, "error: multiple inputs\n");
      return 1;
    }
  }
  if (Input.empty()) {
    usage(argv[0]);
    return 1;
  }

  std::ifstream In(Input);
  if (!In) {
    fprintf(stderr, "error: cannot open %s\n", Input.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  std::string Err;
  auto Program = la::compileLa(Buf.str(), Err);
  if (!Program) {
    fprintf(stderr, "%s: %s\n", Input.c_str(), Err.c_str());
    return 1;
  }

  GenOptions Options;
  Options.Isa = &isaByName(Isa.c_str());
  Options.FuncName = Name.empty() ? baseName(Input) : Name;

  bool UseService = (Measure || !CacheDir.empty()) && VariantStr.empty() &&
                    !PrintVariants;
  if (!VariantStr.empty() && (Measure || !CacheDir.empty()))
    fprintf(stderr, "warning: -variant bypasses -measure/-cache-dir\n");
  if (StrategySet && !Batch)
    fprintf(stderr, "warning: -batch-strategy has no effect without -batch\n");

  std::string C;
  if (UseService) {
    // Serving-runtime path: cached across runs (disk tier) and optionally
    // ranked by measurement instead of the static model. The program is
    // handed over as-is; the service normalizes it once for the cache key.
    service::ServiceConfig SC;
    SC.CacheDir = CacheDir;
    SC.Measure = Measure;
    SC.MaxVariants = MaxVariants;
    SC.Strategy = Strategy;
    service::KernelService Service(SC);
    service::GetResult R = Service.get(std::move(*Program), Options, Batch);
    if (!R) {
      fprintf(stderr, "%s: %s\n", Input.c_str(), R.Error.c_str());
      return 1;
    }
    if (PrintBasic)
      fprintf(stderr, "/* -print-basic is unavailable with "
                      "-measure/-cache-dir (cache hits skip Stage 1) */\n");
    C += "/* Generated by slc from " + Input + " -- SLinGen reproduction.\n";
    C += " * ISA: " + Isa + ", cache key: " + R->Key +
         ", static cost estimate: " + std::to_string(R->StaticCost) +
         " cycles";
    if (R->Measured)
      C += formatf(", measured median: %.1f cycles", R->MeasuredCycles);
    C += ". */\n";
    C += R->CSource;
  } else {
    Generator Gen(std::move(*Program), Options);
    if (!Gen.isValid()) {
      fprintf(stderr, "%s: %s\n", Input.c_str(), Gen.error().c_str());
      return 1;
    }

    if (PrintVariants) {
      printf("%d HLAC(s)\n", Gen.hlacCount());
      for (size_t I = 0; I < Gen.variantCounts().size(); ++I)
        printf("  hlac %zu: %d variant(s)\n", I, Gen.variantCounts()[I]);
      return 0;
    }

    std::optional<GenResult> Result;
    if (!VariantStr.empty()) {
      std::vector<int> Choice;
      std::stringstream VS(VariantStr);
      std::string Tok;
      while (std::getline(VS, Tok, ','))
        Choice.push_back(atoi(Tok.c_str()));
      Result = Gen.generate(Choice);
    } else {
      Result = Gen.best(MaxVariants);
    }
    if (!Result) {
      fprintf(stderr, "%s: generation failed (infeasible variant?)\n",
              Input.c_str());
      return 1;
    }

    if (PrintBasic)
      fprintf(stderr, "/* Stage 1 basic program:\n%s*/\n",
              Result->Basic.str().c_str());

    C += "/* Generated by slc from " + Input + " -- SLinGen reproduction.\n";
    C += " * ISA: " + Isa + ", static cost estimate: " +
         std::to_string(Result->Cost) + " cycles. */\n";
    if (!Batch) {
      C += emitC(*Result);
    } else {
      // Without the service there is nothing to measure against, so Auto
      // resolves by the static cost model alone; the chooser already
      // produced the winning emission when vec won. (Mirrors the
      // resolution ladder in KernelService::produce.)
      BatchStrategy S = Strategy;
      if (S == BatchStrategy::InstanceParallel && Options.Isa->Nu < 2) {
        fprintf(stderr, "warning: -batch-strategy vec needs a vector ISA; "
                        "emitting the scalar loop\n");
        S = BatchStrategy::ScalarLoop;
      }
      std::string Emitted;
      if (S == BatchStrategy::Auto) {
        service::BatchChoice BC = service::chooseBatchStrategy(
            *Result, Options, {}, /*AllowCompile=*/false);
        S = BC.Strategy;
        Emitted = std::move(BC.VecSource);
      }
      if (S == BatchStrategy::InstanceParallel && Emitted.empty())
        Emitted = emitBatchedVectorC(*Result, &Options);
      else if (S != BatchStrategy::InstanceParallel)
        Emitted = emitBatchedC(*Result);
      C += Emitted;
    }
  }

  if (Output.empty()) {
    fputs(C.c_str(), stdout);
  } else {
    std::ofstream Out(Output);
    if (!Out) {
      fprintf(stderr, "error: cannot write %s\n", Output.c_str());
      return 1;
    }
    Out << C;
  }
  return 0;
}
