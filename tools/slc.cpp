//===- tools/slc.cpp - the SLinGen command-line compiler -------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The user-facing generator, built on the public client API
// (slingen/client.h): every serving-path request -- cached, measured,
// batched, or remote -- goes through one sl::Session, whether it resolves
// to an in-process service (`local:`) or a running sld daemon (-connect).
// Only the local introspection flags (-variant, -print-variants,
// -print-basic without a service) drive the Generator pipeline directly.
//
//   slc [options] input.la
//     -o <file>        output C file (default: stdout)
//     -isa <name>      scalar | sse2 | avx | avx512 (default: avx)
//     -name <ident>    generated function name (default: from file name)
//     -variant <n,...> per-HLAC algorithm choice (default: autotune by
//                      cost model)
//     -max-variants N  autotuning search budget (default 16)
//     -measure         rank variants by JIT-compiled timings (measured
//                      autotuner; falls back to the cost model when no C
//                      compiler is available)
//     -cache-dir <dir> persist/reuse kernels in a disk cache
//     -batch           also emit the <name>_batch(int count, ...) entry
//     -batch-strategy  loop | vec | fused | auto (default auto): how the
//                      batch entry iterates instances
//     -batch-threads k batched dispatch width recorded on the artifact
//                      (0 = auto: the service measures; k >= 1 pins)
//     -set k=v         any GenOptions key (see slingen/OptionsIO.h); the
//                      named flags above are sugar for these
//     -service k=v     any ServiceConfig key (local service mode)
//     -connect <addr>  serve the request from the sld daemon at <addr>
//                      (a unix socket path, unix:<path>, or host:port)
//     -timeout-ms <n>  per-request deadline: fail with deadline-exceeded
//                      after <n> ms instead of waiting forever (the daemon
//                      sheds the work too when it speaks the deadline
//                      field)
//     -retries <n>     transport/overload retry budget per request
//                      (default 2; 0 disables retries)
//     -so-out <file>   also write the compiled shared object (from the
//                      daemon with -connect, from the local JIT otherwise)
//     -warm <file>     queue a prefetch for every .la path listed in
//                      <file> (one per line, # comments) -- on the daemon
//                      with -connect, else on a local service (wants
//                      -cache-dir); exits after queueing/draining
//     -stats           print the serving side's counters (with -connect:
//                      the daemon's) plus derived hit rates, then exit
//     --raw            with -stats: also append the raw METRICS scrape
//                      text after the stats document
//     -metrics         print the serving side's metrics registry (the
//                      METRICS scrape: counters, gauges, histogram
//                      percentiles, per-kernel/per-peer tables), then exit
//     -timing          request the per-phase timing breakdown and print
//                      it to stderr (tier, generation/compile/tune time,
//                      round trip)
//     -trace-out <f>   collect phase spans for this run and write them as
//                      Chrome trace-event JSON to <f>
//     -print-basic     also print the Stage 1 basic program to stderr
//     -print-variants  list HLACs and their variant counts, then exit
//     -verify-ir       run the C-IR static verifier (cir/Verify.h) over the
//                      generated function -- and, with -batch on a vector
//                      ISA, over every widened batch variant -- printing a
//                      per-function report to stderr; nonzero exit on any
//                      violation
//
//===----------------------------------------------------------------------===//

#include "slingen/client.h"

#include "cir/Passes.h"
#include "cir/Verify.h"
#include "cir/Widen.h"
#include "la/Lower.h"
#include "service/Tuner.h"
#include "slingen/OptionsIO.h"
#include "slingen/SLinGen.h"
#include "support/File.h"
#include "support/Format.h"
#include "support/KeyValue.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace slingen;

namespace {

void usage(const char *Argv0) {
  fprintf(stderr,
          "usage: %s [options] input.la\n"
          "  -o <file>         output C file (default: stdout)\n"
          "  -isa <name>       scalar | sse2 | avx | avx512 (default: avx)\n"
          "  -name <ident>     generated function name\n"
          "  -variant <n,...>  per-HLAC algorithm indices\n"
          "  -max-variants N   autotuning search budget (default 16)\n"
          "  -measure          rank variants by measured cycles (needs a C\n"
          "                    compiler; falls back to the static model)\n"
          "  -cache-dir <dir>  persist/reuse compiled kernels across runs\n"
          "  -batch            also emit <name>_batch(int count, ...)\n"
          "  -batch-strategy <s>  loop | vec | fused | auto (default auto)\n"
          "  -batch-threads <k>  dispatch width (0 = auto, k >= 1 pins)\n"
          "  -set k=v          set any GenOptions key\n"
          "  -service k=v      set any ServiceConfig key\n"
          "  -connect <addr>   request from the sld daemon at <addr>\n"
          "  -timeout-ms <n>   per-request deadline in milliseconds\n"
          "  -retries <n>      transport/overload retry budget (default 2)\n"
          "  -so-out <file>    save the compiled shared object\n"
          "  -warm <file>      prefetch every .la listed in <file>\n"
          "  -stats            print serving-side counters + hit rates\n"
          "  --raw             with -stats: append the raw METRICS text\n"
          "  -metrics          print the serving-side metrics scrape\n"
          "  -timing           print the request's phase breakdown\n"
          "  -trace-out <f>    write Chrome trace JSON for this run\n"
          "  -print-basic      print the Stage 1 basic program to stderr\n"
          "  -print-variants   list HLAC variant counts and exit\n"
          "  -verify-ir        print the per-function C-IR verification\n"
          "                    report (single-instance kernel plus every\n"
          "                    batched widening with -batch) to stderr;\n"
          "                    exit nonzero on any violation\n",
          Argv0);
}

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Name = Slash == std::string::npos ? Path
                                                : Path.substr(Slash + 1);
  size_t Dot = Name.find_last_of('.');
  if (Dot != std::string::npos)
    Name = Name.substr(0, Dot);
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  if (Name.empty() || isdigit(static_cast<unsigned char>(Name[0])))
    Name = "kernel_" + Name;
  return Name;
}

/// The provenance header prepended to every emitted translation unit. One
/// formatter, so local service output and daemon output stay byte-equal
/// for the same request (check.sh diffs them).
std::string headerComment(const std::string &Input, const std::string &Isa,
                          const std::string &Key, long StaticCost,
                          bool Measured, double MeasuredCycles) {
  std::string C =
      "/* Generated by slc from " + Input + " -- SLinGen reproduction.\n";
  C += " * ISA: " + Isa;
  if (!Key.empty())
    C += ", cache key: " + Key;
  C += ", static cost estimate: " + std::to_string(StaticCost) + " cycles";
  if (Measured)
    C += formatf(", measured median: %.1f cycles", MeasuredCycles);
  C += ". */\n";
  return C;
}

/// Paths listed one per line; blank lines and #-comments skipped.
std::vector<std::string> readWarmList(const std::string &Path, bool &Ok) {
  std::vector<std::string> Files;
  std::ifstream In(Path);
  Ok = static_cast<bool>(In);
  std::string Line;
  while (std::getline(In, Line)) {
    while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
      Line.pop_back();
    if (Line.empty() || Line[0] == '#')
      continue;
    Files.push_back(Line);
  }
  return Files;
}

int fail(const std::string &Msg) {
  fprintf(stderr, "error: %s\n", Msg.c_str());
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string Input, Output, VariantStr, ConnectAddr, SoOut, WarmFile,
      CacheDir, StrategyName, TraceOut;
  bool PrintBasic = false, PrintVariants = false, Batch = false,
       StatsMode = false, MetricsMode = false, RawStats = false,
       TimingSet = false, VerifyIr = false;
  // Requests only override what the user explicitly set, so a bare
  // `slc -connect` defers strategy/measure/threads policy to the daemon.
  bool MeasureSet = false, NameSet = false, ThreadsSet = false;
  int MaxVariants = 16, BatchThreads = 0, TimeoutMs = 0, Retries = -1;
  // Flags that configure a *local* service and do not travel over the
  // wire; remote modes warn when they were set.
  bool LocalServiceFlags = false;

  GenOptions Options; // eager flag validation + the legacy pipeline path
  std::vector<std::pair<std::string, std::string>> GenPairs;
  sl::SessionConfig ServiceCfg; // `local:` backend knobs, applied in order
  std::string Err;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        usage(argv[0]);
        exit(1);
      }
      return argv[++I];
    };
    // Every generator flag funnels into applyGenOption -- the named flags
    // are spelling sugar for the serialized key set -- and is recorded as
    // a key=value pair for the request builder.
    auto SetGen = [&](const char *Key, const std::string &Value) {
      if (!applyGenOption(Options, Key, Value, Err))
        exit(fail(Err));
      GenPairs.emplace_back(Key, Value);
    };
    auto SetService = [&](const std::string &Key, const std::string &Value) {
      ServiceCfg.ServiceOptions.emplace_back(Key, Value);
    };
    if (Arg == "-o")
      Output = Next();
    else if (Arg == "-isa")
      SetGen("isa", Next());
    else if (Arg == "-name") {
      SetGen("func", Next());
      NameSet = true;
    } else if (Arg == "-variant")
      VariantStr = Next();
    else if (Arg == "-max-variants") {
      std::string N = Next();
      MaxVariants = atoi(N.c_str());
      if (MaxVariants <= 0)
        return fail("-max-variants takes a positive count");
      SetService("max-variants", N);
      LocalServiceFlags = true;
    } else if (Arg == "-measure")
      MeasureSet = true;
    else if (Arg == "-cache-dir") {
      CacheDir = Next();
      SetService("cache-dir", CacheDir);
      LocalServiceFlags = true;
    }
    else if (Arg == "-batch")
      Batch = true;
    else if (Arg == "-batch-strategy") {
      StrategyName = Next();
      if (!batchStrategyByName(StrategyName)) {
        fprintf(stderr,
                "error: -batch-strategy takes loop, vec, fused, or auto\n");
        return 1;
      }
    } else if (Arg == "-batch-threads") {
      std::string K = Next();
      BatchThreads = atoi(K.c_str());
      if (BatchThreads < 0 || BatchThreads > 1024 ||
          K.find_first_not_of("0123456789") != std::string::npos)
        return fail("-batch-threads takes 0 (auto) to 1024");
      ThreadsSet = true;
    } else if (Arg == "-set" || Arg == "-service") {
      std::string KV = Next();
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos)
        return fail(Arg + " takes key=value");
      if (Arg == "-set")
        SetGen(KV.substr(0, Eq).c_str(), KV.substr(Eq + 1));
      else {
        SetService(KV.substr(0, Eq), KV.substr(Eq + 1));
        LocalServiceFlags = true;
      }
    } else if (Arg == "-connect")
      ConnectAddr = Next();
    else if (Arg == "-timeout-ms") {
      std::string N = Next();
      TimeoutMs = atoi(N.c_str());
      if (TimeoutMs <= 0 ||
          N.find_first_not_of("0123456789") != std::string::npos)
        return fail("-timeout-ms takes a positive millisecond budget");
    } else if (Arg == "-retries") {
      std::string N = Next();
      Retries = atoi(N.c_str());
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos)
        return fail("-retries takes a retry count (0 disables retries)");
    }
    else if (Arg == "-so-out")
      SoOut = Next();
    else if (Arg == "-warm")
      WarmFile = Next();
    else if (Arg == "-stats")
      StatsMode = true;
    else if (Arg == "--raw")
      RawStats = true;
    else if (Arg == "-metrics")
      MetricsMode = true;
    else if (Arg == "-timing")
      TimingSet = true;
    else if (Arg == "-trace-out")
      TraceOut = Next();
    else if (Arg == "-print-basic")
      PrintBasic = true;
    else if (Arg == "-print-variants")
      PrintVariants = true;
    else if (Arg == "-verify-ir")
      VerifyIr = true;
    else if (Arg == "-h" || Arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      usage(argv[0]);
      return 1;
    } else if (Input.empty()) {
      Input = Arg;
    } else {
      return fail("multiple inputs");
    }
  }

  if (!ConnectAddr.empty() && LocalServiceFlags)
    fprintf(stderr,
            "warning: -cache-dir/-max-variants/-service configure a local "
            "service and are ignored with -connect (the daemon uses its "
            "own config)\n");
  if (Retries >= 0 && ConnectAddr.empty())
    fprintf(stderr,
            "warning: -retries only affects daemon requests (-connect)\n");
  if (!StrategyName.empty() && !Batch)
    fprintf(stderr, "warning: -batch-strategy has no effect without -batch\n");
  if (ThreadsSet && !Batch)
    fprintf(stderr, "warning: -batch-threads has no effect without -batch\n");

  // Collection must be on before the session exists so connect/produce
  // spans land in the export.
  if (!TraceOut.empty())
    sl::setTracing(true);
  auto writeTrace = [&]() -> bool {
    if (TraceOut.empty())
      return true;
    std::string TErr;
    if (!sl::exportTraceJson(TraceOut, TErr)) {
      fprintf(stderr, "error: cannot write trace: %s\n", TErr.c_str());
      return false;
    }
    fprintf(stderr, "trace: wrote %s\n", TraceOut.c_str());
    return true;
  };

  /// One request shape for every serving path (warm, local, remote).
  auto buildRequest = [&](const std::string &Source,
                          const std::string &DefaultName) {
    sl::RequestBuilder B;
    B.source(Source);
    for (const auto &[Key, Value] : GenPairs)
      B.option(Key, Value);
    if (!NameSet)
      B.name(DefaultName);
    if (Batch) {
      B.batched();
      if (!StrategyName.empty())
        B.strategy(StrategyName);
      if (ThreadsSet)
        B.threads(BatchThreads);
    }
    if (MeasureSet)
      B.measure();
    if (TimeoutMs > 0)
      B.deadlineMs(TimeoutMs);
    B.wantObject(!SoOut.empty());
    if (TimingSet)
      B.wantTiming();
    return B.build();
  };

  /// Resolves the session address: the daemon with -connect, an
  /// in-process service otherwise. Local sessions only enable the C
  /// compiler when something needs the object (-measure tuning, a disk
  /// cache worth persisting, -so-out); a plain `slc foo.la` stays a pure
  /// source-to-source run exactly as before.
  auto openSession = [&]() -> sl::Result<sl::Session> {
    if (!ConnectAddr.empty()) {
      sl::SessionConfig C;
      if (Retries >= 0)
        C.MaxRetries = Retries;
      return sl::Session::open(ConnectAddr, C);
    }
    sl::SessionConfig C;
    if (!MeasureSet && CacheDir.empty() && SoOut.empty())
      C.ServiceOptions.emplace_back("use-compiler", "0");
    if (MeasureSet)
      C.ServiceOptions.emplace_back("measure", "1");
    for (const auto &KV : ServiceCfg.ServiceOptions)
      C.ServiceOptions.push_back(KV); // user -service keys win (applied last)
    return sl::Session::open("local:", C);
  };

  if (RawStats && !StatsMode)
    fprintf(stderr, "warning: --raw only affects -stats output\n");

  //===--------------------------------------------------------------------===//
  // Metrics mode: dump the serving side's metrics registry (the METRICS
  // verb against a daemon, this process's registry for local:).
  //===--------------------------------------------------------------------===//
  if (MetricsMode) {
    if (StatsMode)
      return fail("-stats and -metrics are mutually exclusive");
    if (!Input.empty())
      return fail("-metrics takes no positional input");
    if (ConnectAddr.empty())
      fprintf(stderr, "warning: -metrics without -connect reports a fresh "
                      "local process (mostly empty); point it at a daemon\n");
    auto S = openSession();
    if (!S)
      return fail(S.message());
    auto M = S->metrics();
    if (!M)
      return fail(M.message());
    fputs(M->c_str(), stdout);
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // Stats mode: dump the serving side's counters plus derived rates.
  //===--------------------------------------------------------------------===//
  if (StatsMode) {
    if (!Input.empty())
      return fail("-stats takes no positional input");
    if (ConnectAddr.empty())
      fprintf(stderr, "warning: -stats without -connect reports a fresh "
                      "local service (all zeros); point it at a daemon\n");
    auto S = openSession();
    if (!S)
      return fail(S.message());
    auto Stats = S->stats();
    if (!Stats)
      return fail(Stats.message());
    fputs(Stats->c_str(), stdout);
    // Derived rates, marked as comments so the raw document above stays
    // machine-parseable as plain key=value lines. One fixed field order
    // (requests, hit, mem, disk, generated), every field always present
    // -- scripts can cut on position without probing which fields
    // happened to be nonzero.
    auto KV = parseKeyValueMap(*Stats);
    long MemHits = atol(KV["mem-hits"].c_str());
    long DiskHits = atol(KV["disk-hits"].c_str());
    long Misses = atol(KV["misses"].c_str());
    long Requests = MemHits + DiskHits + Misses;
    auto Pct = [&](long N) {
      return Requests > 0 ? 100.0 * N / Requests : 0.0;
    };
    printf("# requests=%ld hit=%.1f%% mem=%.1f%% disk=%.1f%% "
           "generated=%.1f%%\n",
           Requests, Pct(MemHits + DiskHits), Pct(MemHits), Pct(DiskHits),
           Pct(Misses));
    if (RawStats) {
      // The full scrape, same bytes as `slc -metrics`, separated so the
      // key=value stats document above stays parseable on its own.
      auto M = S->metrics();
      if (!M)
        return fail(M.message());
      printf("# --- metrics ---\n");
      fputs(M->c_str(), stdout);
    }
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // Warm mode: queue prefetches for a list of programs, then exit.
  //===--------------------------------------------------------------------===//
  if (!WarmFile.empty()) {
    if (!Input.empty())
      return fail("-warm takes its programs from the list file; "
                  "no positional input allowed");
    bool Ok = false;
    std::vector<std::string> Files = readWarmList(WarmFile, Ok);
    if (!Ok)
      return fail("cannot open warm list " + WarmFile);
    if (Files.empty())
      return fail("warm list " + WarmFile + " names no programs");
    if (ConnectAddr.empty() && CacheDir.empty())
      fprintf(stderr, "warning: -warm without -cache-dir or -connect "
                      "warms a cache that dies with this process\n");

    auto S = openSession();
    if (!S)
      return fail(S.message());

    int Failures = 0;
    for (const std::string &File : Files) {
      bool ReadOk = false;
      std::string Source = readFile(File, &ReadOk);
      if (!ReadOk) {
        fprintf(stderr, "warm: cannot open %s\n", File.c_str());
        ++Failures;
        continue;
      }
      auto R = buildRequest(Source, baseName(File));
      if (!R) {
        fprintf(stderr, "warm: %s: %s\n", File.c_str(),
                R.message().c_str());
        ++Failures;
        continue;
      }
      if (sl::Status St = S->warm(*R); !St) {
        fprintf(stderr, "warm: %s: %s\n", File.c_str(),
                St.message().c_str());
        ++Failures;
        continue;
      }
      fprintf(stderr, "warm: queued %s\n", File.c_str());
    }
    if (S->backend() == sl::Session::BackendKind::Local) {
      S->drain();
      if (auto Stats = S->stats()) {
        auto KV = parseKeyValueMap(*Stats);
        long Errors = atol(KV["errors"].c_str());
        fprintf(stderr,
                "warm: done (%ld generated, %ld already cached, "
                "%ld errors)\n",
                atol(KV["generations"].c_str()),
                atol(KV["disk-hits"].c_str()) +
                    atol(KV["mem-hits"].c_str()),
                Errors);
        if (Errors > 0)
          return 1;
      }
    }
    return writeTrace() && Failures == 0 ? 0 : 1;
  }

  if (Input.empty()) {
    usage(argv[0]);
    return 1;
  }

  std::ifstream In(Input);
  if (!In) {
    return fail("cannot open " + Input);
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  if (!NameSet && !applyGenOption(Options, "func", baseName(Input), Err))
    return fail(Err);

  // Introspection flags run the Generator pipeline directly: explicit
  // variant choices, Stage-1/variant listings, and IR verification reports
  // are about *this process's* generation, not a served artifact.
  bool Legacy = ConnectAddr.empty() &&
                (!VariantStr.empty() || PrintVariants ||
                 ((PrintBasic || VerifyIr) && !MeasureSet &&
                  CacheDir.empty() && SoOut.empty()));

  if (!Legacy) {
    //===------------------------------------------------------------------===//
    // Serving path: one sl::Session, local or remote.
    //===------------------------------------------------------------------===//
    if (!ConnectAddr.empty() &&
        (!VariantStr.empty() || PrintVariants || PrintBasic || VerifyIr))
      fprintf(stderr,
              "warning: -variant/-print-basic/-print-variants/-verify-ir "
              "are local-only and ignored with -connect\n");
    if (VerifyIr && ConnectAddr.empty())
      fprintf(stderr, "warning: -verify-ir is unavailable with "
                      "-measure/-cache-dir/-so-out (the service verifies "
                      "before every compile; see cir.verify_rejected)\n");

    auto S = openSession();
    if (!S)
      return fail(S.message());
    auto R = buildRequest(Buf.str(), baseName(Input));
    if (!R)
      return fail(R.message());
    auto K = S->get(*R);
    if (!K) {
      fprintf(stderr, "%s: %s\n", Input.c_str(), K.message().c_str());
      return 1;
    }
    if (TimingSet) {
      if (const sl::TimingBreakdown *T = K->timing())
        fprintf(stderr,
                "timing: tier=%s total-us=%ld round-trip-us=%ld "
                "(cache=%ld wait=%ld disk=%ld gen=%ld tune=%ld "
                "compile=%ld)\n",
                T->Tier.c_str(), T->TotalUs, T->RoundTripUs, T->CacheUs,
                T->WaitUs, T->DiskUs, T->GenUs, T->TuneUs, T->CompileUs);
      else
        fprintf(stderr, "timing: unavailable (serving side predates the "
                        "breakdown field)\n");
    }
    if (PrintBasic && ConnectAddr.empty())
      fprintf(stderr, "/* -print-basic is unavailable with "
                      "-measure/-cache-dir (cache hits skip Stage 1) */\n");

    std::string C = headerComment(Input, K->isa(), K->key(),
                                  K->staticCost(), K->measured(),
                                  K->measuredCycles()) +
                    K->cSource();
    if (!SoOut.empty()) {
      if (K->objectBytes().empty())
        return fail("no compiled shared object to save (source-only "
                    "artifact)");
      std::ofstream So(SoOut, std::ios::binary);
      So.write(K->objectBytes().data(),
               static_cast<std::streamsize>(K->objectBytes().size()));
      So.close();
      if (!So)
        return fail("cannot write " + SoOut);
      fprintf(stderr, "%s: %zu-byte shared object (%s)\n", SoOut.c_str(),
              K->objectBytes().size(),
              K->origin() == sl::Kernel::Origin::Remote ? "from daemon"
                                                        : "local JIT");
    }
    if (Output.empty()) {
      fputs(C.c_str(), stdout);
    } else {
      std::ofstream Out(Output);
      if (!Out)
        return fail("cannot write " + Output);
      Out << C;
    }
    return writeTrace() ? 0 : 1;
  }

  //===--------------------------------------------------------------------===//
  // Legacy pipeline path: explicit variants and introspection.
  //===--------------------------------------------------------------------===//
  if (!SoOut.empty())
    return fail("-so-out needs a served artifact and is unavailable with "
                "-variant/-print-variants");
  if (!VariantStr.empty() && (MeasureSet || !CacheDir.empty()))
    fprintf(stderr, "warning: -variant bypasses -measure/-cache-dir\n");

  std::string ParseErr;
  auto Program = la::compileLa(Buf.str(), ParseErr);
  if (!Program) {
    fprintf(stderr, "%s: %s\n", Input.c_str(), ParseErr.c_str());
    return 1;
  }

  Generator Gen(std::move(*Program), Options);
  if (!Gen.isValid()) {
    fprintf(stderr, "%s: %s\n", Input.c_str(), Gen.error().c_str());
    return 1;
  }

  if (PrintVariants) {
    printf("%d HLAC(s)\n", Gen.hlacCount());
    for (size_t I = 0; I < Gen.variantCounts().size(); ++I)
      printf("  hlac %zu: %d variant(s)\n", I, Gen.variantCounts()[I]);
    return 0;
  }

  std::optional<GenResult> Result;
  if (!VariantStr.empty()) {
    std::vector<int> Choice;
    std::stringstream VS(VariantStr);
    std::string Tok;
    while (std::getline(VS, Tok, ','))
      Choice.push_back(atoi(Tok.c_str()));
    Result = Gen.generate(Choice);
  } else {
    Result = Gen.best(MaxVariants);
  }
  if (!Result) {
    fprintf(stderr, "%s: generation failed (infeasible variant?)\n",
            Input.c_str());
    return 1;
  }

  if (PrintBasic)
    fprintf(stderr, "/* Stage 1 basic program:\n%s*/\n",
            Result->Basic.str().c_str());

  if (VerifyIr) {
    // The report covers the single-instance kernel and -- with -batch on a
    // vector ISA -- every widened batch variant the emitters can produce,
    // replaying the recompile/widen/contract pipeline exactly as emission
    // does (see slingen::verifyEmittedIR). All strategies are reported, not
    // just the one the chooser would pick: the report is an audit surface.
    bool Clean = true;
    auto Report = [&](const cir::Function &F) {
      fputs(cir::verifyReportText(F).c_str(), stderr);
      Clean &= cir::verify(F).empty();
    };
    Report(Result->Func);
    const int Nu = Result->Func.Nu;
    if (Batch && Nu >= 2) {
      if (auto Pre = recompileScalar(*Result, &Options)) {
        Report(Pre->Func);
        auto Widened = [&](std::optional<cir::WidenedFunction> W) {
          if (!W)
            return;
          if (Nu >= 4)
            cir::contractFma(W->Func);
          Report(W->Func);
        };
        const std::string &N = Result->Func.Name;
        Widened(cir::widenAcrossInstances(Pre->Func, Nu, N + "_vecblk"));
        Widened(cir::widenAcrossInstancesFused(Pre->Func, Nu,
                                               N + "_fusedblk"));
        Widened(cir::widenAcrossInstancesFusedMasked(Pre->Func, Nu,
                                                     N + "_fusedtail"));
      }
    }
    if (!Clean)
      return fail("C-IR verification failed (see report above)");
  }

  std::string C = headerComment(Input, Options.Isa->Name, "", Result->Cost,
                                false, 0.0);
  if (!Batch) {
    C += emitC(*Result);
  } else {
    // Without a service there is nothing to measure against, so Auto
    // resolves by the static cost model alone; the chooser already
    // produced the winning emission when vec won. (Mirrors the
    // resolution ladder in the service.)
    BatchStrategy S = StrategyName.empty()
                          ? BatchStrategy::Auto
                          : *batchStrategyByName(StrategyName);
    if ((S == BatchStrategy::InstanceParallel ||
         S == BatchStrategy::InstanceParallelFused) &&
        Options.Isa->Nu < 2) {
      fprintf(stderr, "warning: -batch-strategy vec/fused needs a vector "
                      "ISA; emitting the scalar loop\n");
      S = BatchStrategy::ScalarLoop;
    }
    std::string Emitted;
    if (S == BatchStrategy::Auto) {
      service::BatchChoice BC = service::chooseBatchStrategy(
          *Result, Options, {}, /*AllowCompile=*/false, BatchThreads);
      S = BC.Strategy;
      Emitted = std::move(BC.ChosenSource);
    }
    if (S == BatchStrategy::InstanceParallelFused && Emitted.empty())
      Emitted = emitBatchedVectorFusedC(*Result, &Options);
    else if (S == BatchStrategy::InstanceParallel && Emitted.empty())
      Emitted = emitBatchedVectorC(*Result, &Options);
    else if (Emitted.empty())
      Emitted = emitBatchedC(*Result);
    C += Emitted;
  }

  if (Output.empty()) {
    fputs(C.c_str(), stdout);
  } else {
    std::ofstream Out(Output);
    if (!Out) {
      return fail("cannot write " + Output);
    }
    Out << C;
  }
  return 0;
}
