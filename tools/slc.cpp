//===- tools/slc.cpp - the SLinGen command-line compiler -------------------===//
//
// Part of the SLinGen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The user-facing generator: reads an LA program, runs the full pipeline,
// and writes a single-source C function. With -connect it is instead a thin
// client of a running sld daemon: the daemon generates (or serves from its
// caches) and ships back the C plus the compiled .so.
//
//   slc [options] input.la
//     -o <file>        output C file (default: stdout)
//     -isa <name>      scalar | sse2 | avx | avx512 (default: avx)
//     -name <ident>    generated function name (default: from file name)
//     -variant <n,...> per-HLAC algorithm choice (default: autotune by
//                      cost model)
//     -max-variants N  autotuning search budget (default 16)
//     -measure         rank variants by JIT-compiled timings (KernelService
//                      measured autotuner; falls back to the cost model
//                      when no C compiler is available)
//     -cache-dir <dir> persist/reuse kernels in a KernelService disk cache
//     -batch           also emit the <name>_batch(int count, ...) entry
//     -batch-strategy  loop | vec | fused | auto (default auto): how the
//                      batch entry iterates instances
//     -batch-threads k batched dispatch width recorded on the artifact
//                      (0 = auto: the service measures; k >= 1 pins)
//     -set k=v         any GenOptions key (see slingen/OptionsIO.h); the
//                      named flags above are sugar for these
//     -service k=v     any ServiceConfig key (local service mode)
//     -connect <addr>  serve the request from the sld daemon at <addr>
//                      (a unix socket path, unix:<path>, or host:port)
//     -so-out <file>   with -connect: also write the compiled shared
//                      object received from the daemon (dlopen-ready, no
//                      local C compiler involved)
//     -warm <file>     queue a prefetch for every .la path listed in
//                      <file> (one per line, # comments) -- on the daemon
//                      with -connect, else on a local service (wants
//                      -cache-dir); exits after queueing/draining
//     -print-basic     also print the Stage 1 basic program to stderr
//     -print-variants  list HLACs and their variant counts, then exit
//
//===----------------------------------------------------------------------===//

#include "la/Lower.h"
#include "net/Client.h"
#include "service/KernelService.h"
#include "service/Tuner.h"
#include "slingen/OptionsIO.h"
#include "slingen/SLinGen.h"
#include "support/File.h"
#include "support/Format.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace slingen;

namespace {

void usage(const char *Argv0) {
  fprintf(stderr,
          "usage: %s [options] input.la\n"
          "  -o <file>         output C file (default: stdout)\n"
          "  -isa <name>       scalar | sse2 | avx | avx512 (default: avx)\n"
          "  -name <ident>     generated function name\n"
          "  -variant <n,...>  per-HLAC algorithm indices\n"
          "  -max-variants N   autotuning search budget (default 16)\n"
          "  -measure          rank variants by measured cycles (needs a C\n"
          "                    compiler; falls back to the static model)\n"
          "  -cache-dir <dir>  persist/reuse compiled kernels across runs\n"
          "  -batch            also emit <name>_batch(int count, ...)\n"
          "  -batch-strategy <s>  loop | vec | fused | auto (default auto)\n"
          "  -batch-threads <k>  dispatch width (0 = auto, k >= 1 pins)\n"
          "  -set k=v          set any GenOptions key\n"
          "  -service k=v      set any ServiceConfig key\n"
          "  -connect <addr>   request from the sld daemon at <addr>\n"
          "  -so-out <file>    with -connect: save the received .so\n"
          "  -warm <file>      prefetch every .la listed in <file>\n"
          "  -print-basic      print the Stage 1 basic program to stderr\n"
          "  -print-variants   list HLAC variant counts and exit\n",
          Argv0);
}

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Name = Slash == std::string::npos ? Path
                                                : Path.substr(Slash + 1);
  size_t Dot = Name.find_last_of('.');
  if (Dot != std::string::npos)
    Name = Name.substr(0, Dot);
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  if (Name.empty() || isdigit(static_cast<unsigned char>(Name[0])))
    Name = "kernel_" + Name;
  return Name;
}

/// The provenance header prepended to every emitted translation unit. One
/// formatter, so local service output and daemon output stay byte-equal
/// for the same request (check.sh diffs them).
std::string headerComment(const std::string &Input, const std::string &Isa,
                          const std::string &Key, long StaticCost,
                          bool Measured, double MeasuredCycles) {
  std::string C =
      "/* Generated by slc from " + Input + " -- SLinGen reproduction.\n";
  C += " * ISA: " + Isa;
  if (!Key.empty())
    C += ", cache key: " + Key;
  C += ", static cost estimate: " + std::to_string(StaticCost) + " cycles";
  if (Measured)
    C += formatf(", measured median: %.1f cycles", MeasuredCycles);
  C += ". */\n";
  return C;
}

/// Paths listed one per line; blank lines and #-comments skipped.
std::vector<std::string> readWarmList(const std::string &Path, bool &Ok) {
  std::vector<std::string> Files;
  std::ifstream In(Path);
  Ok = static_cast<bool>(In);
  std::string Line;
  while (std::getline(In, Line)) {
    while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
      Line.pop_back();
    if (Line.empty() || Line[0] == '#')
      continue;
    Files.push_back(Line);
  }
  return Files;
}

int fail(const std::string &Msg) {
  fprintf(stderr, "error: %s\n", Msg.c_str());
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string Input, Output, VariantStr, ConnectAddr, SoOut, WarmFile;
  bool PrintBasic = false, PrintVariants = false, Batch = false;
  // Remote requests only override what the user explicitly set, so a bare
  // `slc -connect` defers strategy/measure/threads policy to the daemon.
  bool StrategySet = false, MeasureSet = false, NameSet = false,
       ThreadsSet = false;
  // Flags that configure a *local* KernelService and do not travel over
  // the wire; remote modes warn when they were set.
  bool LocalServiceFlags = false;

  GenOptions Options;
  service::ServiceConfig SC;
  std::string Err;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        usage(argv[0]);
        exit(1);
      }
      return argv[++I];
    };
    // Every option flag funnels into the two apply*Option helpers -- the
    // named flags are spelling sugar for the serialized key set.
    auto SetGen = [&](const char *Key, const std::string &Value) {
      if (!applyGenOption(Options, Key, Value, Err))
        exit(fail(Err));
    };
    auto SetService = [&](const std::string &Key, const std::string &Value) {
      if (!service::applyServiceConfigOption(SC, Key, Value, Err))
        exit(fail(Err));
    };
    if (Arg == "-o")
      Output = Next();
    else if (Arg == "-isa")
      SetGen("isa", Next());
    else if (Arg == "-name") {
      SetGen("func", Next());
      NameSet = true;
    } else if (Arg == "-variant")
      VariantStr = Next();
    else if (Arg == "-max-variants") {
      SetService("max-variants", Next());
      LocalServiceFlags = true;
    } else if (Arg == "-measure") {
      SetService("measure", "1");
      MeasureSet = true;
    } else if (Arg == "-cache-dir") {
      SetService("cache-dir", Next());
      LocalServiceFlags = true;
    }
    else if (Arg == "-batch")
      Batch = true;
    else if (Arg == "-batch-strategy") {
      std::string Value = Next();
      if (!service::applyServiceConfigOption(SC, "strategy", Value, Err)) {
        fprintf(stderr,
                "error: -batch-strategy takes loop, vec, fused, or auto\n");
        return 1;
      }
      StrategySet = true;
    } else if (Arg == "-batch-threads") {
      SetService("batch-threads", Next());
      ThreadsSet = true;
    } else if (Arg == "-set" || Arg == "-service") {
      std::string KV = Next();
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos)
        return fail(Arg + " takes key=value");
      if (Arg == "-set")
        SetGen(KV.substr(0, Eq).c_str(), KV.substr(Eq + 1));
      else {
        SetService(KV.substr(0, Eq), KV.substr(Eq + 1));
        LocalServiceFlags = true;
      }
    } else if (Arg == "-connect")
      ConnectAddr = Next();
    else if (Arg == "-so-out")
      SoOut = Next();
    else if (Arg == "-warm")
      WarmFile = Next();
    else if (Arg == "-print-basic")
      PrintBasic = true;
    else if (Arg == "-print-variants")
      PrintVariants = true;
    else if (Arg == "-h" || Arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      usage(argv[0]);
      return 1;
    } else if (Input.empty()) {
      Input = Arg;
    } else {
      return fail("multiple inputs");
    }
  }

  if (!ConnectAddr.empty() && LocalServiceFlags)
    fprintf(stderr,
            "warning: -cache-dir/-max-variants/-service configure a local "
            "service and are ignored with -connect (the daemon uses its "
            "own config)\n");

  //===--------------------------------------------------------------------===//
  // Warm mode: queue prefetches for a list of programs, then exit.
  //===--------------------------------------------------------------------===//
  if (!WarmFile.empty()) {
    if (!Input.empty())
      return fail("-warm takes its programs from the list file; "
                  "no positional input allowed");
    bool Ok = false;
    std::vector<std::string> Files = readWarmList(WarmFile, Ok);
    if (!Ok)
      return fail("cannot open warm list " + WarmFile);
    if (Files.empty())
      return fail("warm list " + WarmFile + " names no programs");

    std::optional<net::Client> Remote;
    std::optional<service::KernelService> Local;
    if (!ConnectAddr.empty()) {
      Remote = net::Client::connect(ConnectAddr, Err);
      if (!Remote)
        return fail(Err);
    } else {
      if (SC.CacheDir.empty())
        fprintf(stderr, "warning: -warm without -cache-dir or -connect "
                        "warms a cache that dies with this process\n");
      Local.emplace(SC);
    }

    int Failures = 0;
    for (const std::string &File : Files) {
      bool ReadOk = false;
      std::string Source = readFile(File, &ReadOk);
      if (!ReadOk) {
        fprintf(stderr, "warm: cannot open %s\n", File.c_str());
        ++Failures;
        continue;
      }
      GenOptions O = Options;
      if (!NameSet)
        O.FuncName = baseName(File);
      if (Remote) {
        net::Request R;
        R.LaSource = Source;
        R.OptionsText = serializeGenOptions(O);
        R.Batched = Batch;
        if (StrategySet)
          R.StrategyName = batchStrategyName(SC.Strategy);
        if (ThreadsSet)
          R.Threads = SC.BatchThreads;
        if (MeasureSet)
          R.MeasureOverride = 1;
        if (!Remote->warm(R, Err)) {
          fprintf(stderr, "warm: %s: %s\n", File.c_str(), Err.c_str());
          ++Failures;
          continue;
        }
      } else {
        service::RequestOptions Req;
        Req.Batched = Batch;
        Local->prefetch(Source, O, Req);
      }
      fprintf(stderr, "warm: queued %s\n", File.c_str());
    }
    if (Local) {
      Local->drainPrefetches();
      service::ServiceStats St = Local->stats();
      fprintf(stderr, "warm: done (%ld generated, %ld already cached, "
                      "%ld errors)\n",
              St.Generations, St.DiskHits + St.MemHits, St.Errors);
      if (St.Errors > 0)
        return 1;
    }
    return Failures == 0 ? 0 : 1;
  }

  if (Input.empty()) {
    usage(argv[0]);
    return 1;
  }

  std::ifstream In(Input);
  if (!In) {
    return fail("cannot open " + Input);
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  if (!NameSet && !applyGenOption(Options, "func", baseName(Input), Err))
    return fail(Err);

  //===--------------------------------------------------------------------===//
  // Remote mode: slc as a thin client of a running sld daemon.
  //===--------------------------------------------------------------------===//
  if (!ConnectAddr.empty()) {
    if (!VariantStr.empty() || PrintVariants || PrintBasic)
      fprintf(stderr, "warning: -variant/-print-basic/-print-variants are "
                      "local-only and ignored with -connect\n");
    auto Remote = net::Client::connect(ConnectAddr, Err);
    if (!Remote)
      return fail(Err);
    net::Request R;
    R.LaSource = Buf.str();
    R.OptionsText = serializeGenOptions(Options);
    R.Batched = Batch;
    if (StrategySet)
      R.StrategyName = batchStrategyName(SC.Strategy);
    if (ThreadsSet)
      R.Threads = SC.BatchThreads;
    if (MeasureSet)
      R.MeasureOverride = 1;
    R.WantSo = !SoOut.empty();
    net::ArtifactMsg A;
    if (!Remote->get(R, A, Err)) {
      fprintf(stderr, "%s: %s\n", Input.c_str(), Err.c_str());
      return 1;
    }
    std::string C = headerComment(Input, A.IsaName, A.Key, A.StaticCost,
                                  A.Measured, A.MeasuredCycles) +
                    A.CSource;
    if (!SoOut.empty()) {
      if (A.SoBytes.empty())
        return fail("daemon served no compiled object (source-only "
                    "artifact)");
      std::ofstream So(SoOut, std::ios::binary);
      So.write(A.SoBytes.data(),
               static_cast<std::streamsize>(A.SoBytes.size()));
      So.close();
      if (!So)
        return fail("cannot write " + SoOut);
      fprintf(stderr, "%s: %zu-byte shared object from daemon\n",
              SoOut.c_str(), A.SoBytes.size());
    }
    if (Output.empty()) {
      fputs(C.c_str(), stdout);
    } else {
      std::ofstream Out(Output);
      if (!Out)
        return fail("cannot write " + Output);
      Out << C;
    }
    return 0;
  }

  if (!SoOut.empty())
    return fail("-so-out needs -connect (local runs have a compiler)");

  std::string ParseErr;
  auto Program = la::compileLa(Buf.str(), ParseErr);
  if (!Program) {
    fprintf(stderr, "%s: %s\n", Input.c_str(), ParseErr.c_str());
    return 1;
  }

  bool UseService = (SC.Measure || !SC.CacheDir.empty()) &&
                    VariantStr.empty() && !PrintVariants;
  if (!VariantStr.empty() && (SC.Measure || !SC.CacheDir.empty()))
    fprintf(stderr, "warning: -variant bypasses -measure/-cache-dir\n");
  if (StrategySet && !Batch)
    fprintf(stderr, "warning: -batch-strategy has no effect without -batch\n");

  std::string C;
  if (UseService) {
    // Serving-runtime path: cached across runs (disk tier) and optionally
    // ranked by measurement instead of the static model. The program is
    // handed over as-is; the service normalizes it once for the cache key.
    service::KernelService Service(SC);
    service::GetResult R = Service.get(std::move(*Program), Options, Batch);
    if (!R) {
      fprintf(stderr, "%s: %s\n", Input.c_str(), R.Error.c_str());
      return 1;
    }
    if (PrintBasic)
      fprintf(stderr, "/* -print-basic is unavailable with "
                      "-measure/-cache-dir (cache hits skip Stage 1) */\n");
    C = headerComment(Input, Options.Isa->Name, R->Key, R->StaticCost,
                      R->Measured, R->MeasuredCycles) +
        R->CSource;
  } else {
    Generator Gen(std::move(*Program), Options);
    if (!Gen.isValid()) {
      fprintf(stderr, "%s: %s\n", Input.c_str(), Gen.error().c_str());
      return 1;
    }

    if (PrintVariants) {
      printf("%d HLAC(s)\n", Gen.hlacCount());
      for (size_t I = 0; I < Gen.variantCounts().size(); ++I)
        printf("  hlac %zu: %d variant(s)\n", I, Gen.variantCounts()[I]);
      return 0;
    }

    std::optional<GenResult> Result;
    if (!VariantStr.empty()) {
      std::vector<int> Choice;
      std::stringstream VS(VariantStr);
      std::string Tok;
      while (std::getline(VS, Tok, ','))
        Choice.push_back(atoi(Tok.c_str()));
      Result = Gen.generate(Choice);
    } else {
      Result = Gen.best(SC.MaxVariants);
    }
    if (!Result) {
      fprintf(stderr, "%s: generation failed (infeasible variant?)\n",
              Input.c_str());
      return 1;
    }

    if (PrintBasic)
      fprintf(stderr, "/* Stage 1 basic program:\n%s*/\n",
              Result->Basic.str().c_str());

    C = headerComment(Input, Options.Isa->Name, "", Result->Cost, false,
                      0.0);
    if (!Batch) {
      C += emitC(*Result);
    } else {
      // Without the service there is nothing to measure against, so Auto
      // resolves by the static cost model alone; the chooser already
      // produced the winning emission when vec won. (Mirrors the
      // resolution ladder in KernelService::produce.)
      BatchStrategy S = SC.Strategy;
      if ((S == BatchStrategy::InstanceParallel ||
           S == BatchStrategy::InstanceParallelFused) &&
          Options.Isa->Nu < 2) {
        fprintf(stderr, "warning: -batch-strategy vec/fused needs a vector "
                        "ISA; emitting the scalar loop\n");
        S = BatchStrategy::ScalarLoop;
      }
      std::string Emitted;
      if (S == BatchStrategy::Auto) {
        service::BatchChoice BC = service::chooseBatchStrategy(
            *Result, Options, {}, /*AllowCompile=*/false, SC.BatchThreads);
        S = BC.Strategy;
        Emitted = std::move(BC.ChosenSource);
      }
      if (S == BatchStrategy::InstanceParallelFused && Emitted.empty())
        Emitted = emitBatchedVectorFusedC(*Result, &Options);
      else if (S == BatchStrategy::InstanceParallel && Emitted.empty())
        Emitted = emitBatchedVectorC(*Result, &Options);
      else if (Emitted.empty())
        Emitted = emitBatchedC(*Result);
      C += Emitted;
    }
  }

  if (Output.empty()) {
    fputs(C.c_str(), stdout);
  } else {
    std::ofstream Out(Output);
    if (!Out) {
      return fail("cannot write " + Output);
    }
    Out << C;
  }
  return 0;
}
