#!/bin/sh
# tools/bench_batch.sh - record the batch-strategy perf comparison.
#
# Runs bench/batch_strategies (loop vs vec vs fused on potrf {4,8,16} and
# trsyl {4,8}, counts {32,1024} plus the remainder-heavy {33,1025} that
# exercise the masked fused tail, plus threaded "-mt<k>" /
# "-mt<k>-nopin" pinned-vs-unpinned rows on multicore hosts) and writes
# BENCH_batch.json at the repo root so the perf trajectory has data
# across PRs. CPU/NUMA topology lands in the JSON context.
#
#   bench_batch.sh [--smoke]
#
# --smoke trims the run to one size at two counts (a divisible one and a
# masked-tail one) with a short measurement
# window; check.sh uses it as a CI liveness probe. The underlying binary
# already skips cleanly (valid empty JSON) when no system C compiler or no
# vector ISA is available, so this script succeeds everywhere.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${BENCH_OUT:-$ROOT/BENCH_batch.json}"
BIN="$BUILD/bench/bench_batch_strategies"

EXTRA=""
if [ "${1:-}" = "--smoke" ]; then
  # benchmark 1.7 takes bare seconds for --benchmark_min_time. The filter
  # keeps one size at counts 32 (full blocks) and 33 (masked tail) but
  # every strategy variant -- including the threaded -mt / -mt-nopin rows
  # on multicore hosts, so the pool dispatch and affinity paths get CI
  # coverage.
  EXTRA="--benchmark_filter=potrf/n=8/count=3[23]/ --benchmark_min_time=0.05"
fi

if [ ! -x "$BIN" ]; then
  echo "bench_batch.sh: $BIN not built (configure with" \
       "-DSLINGEN_BUILD_BENCH=ON); writing stub" >&2
  printf '{"benchmarks": [], "skipped": "binary not built"}\n' > "$OUT"
  exit 0
fi

# shellcheck disable=SC2086  # EXTRA is intentionally word-split
"$BIN" --benchmark_out="$OUT" --benchmark_out_format=json \
       --benchmark_counters_tabular=true $EXTRA
# When the binary skips (no compiler / no vector ISA) google-benchmark
# leaves a 0-byte output file; replace it with a valid stub so consumers
# (and check.sh's `test -s`) always see well-formed JSON.
if [ ! -s "$OUT" ]; then
  printf '{"benchmarks": [], "skipped": "no runnable strategy comparison on this host"}\n' > "$OUT"
fi
echo "bench_batch.sh: wrote $OUT"
